// Copyright (c) scanshare authors. Licensed under the Apache License 2.0.
//
// ScanSharingManager under concurrent scanners: parallel StartScan /
// UpdateLocation / EndScan across workers, same-scan update contention
// (the morsel-worker pattern), and grouping-snapshot consistency — readers
// must never observe a half-built grouping. Runs under the TSan preset.

#include "ssm/scan_sharing_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/thread_pool.h"
#include "testutil.h"

namespace scanshare::ssm {
namespace {

constexpr sim::PageId kTableFirst = 0;
constexpr sim::PageId kTableEnd = 4096;

SsmOptions Options() {
  SsmOptions o;
  o.bufferpool_pages = 256;
  o.prefetch_extent_pages = 16;
  return o;
}

ScanDescriptor Descriptor(uint32_t table_id = 1) {
  ScanDescriptor d;
  d.table_id = table_id;
  d.table_first = kTableFirst;
  d.table_end = kTableEnd;
  d.range_first = kTableFirst;
  d.range_end = kTableEnd;
  d.estimated_pages = kTableEnd - kTableFirst;
  d.estimated_duration = sim::Seconds(10);
  return d;
}

TEST(ConcurrentSsmTest, ParallelScanLifecyclesKeepInvariants) {
  // Each worker runs several full start → update* → end lifecycles on the
  // same table; the registry and grouping must stay consistent throughout.
  constexpr size_t kWorkers = 8;
  constexpr int kLifecycles = 8;
  ScanSharingManager ssm(Options());
  testutil::ConcurrencyWitness witness;
  std::atomic<uint64_t> clock{1};

  ThreadPool workers(kWorkers);
  workers.ParallelFor(kWorkers, [&](size_t w) {
    witness.Enter();
    for (int life = 0; life < kLifecycles; ++life) {
      auto start = ssm.StartScan(Descriptor(), clock.fetch_add(1));
      ASSERT_TRUE(start.ok());
      const ScanId id = start->id;
      sim::PageId pos = start->start_page;
      for (uint64_t step = 1; step <= 16; ++step) {
        pos = kTableFirst + (pos - kTableFirst + 16) % (kTableEnd - kTableFirst);
        auto update =
            ssm.UpdateLocation(id, pos, step * 16, clock.fetch_add(1));
        ASSERT_TRUE(update.ok()) << "worker " << w;
        auto advised = ssm.AdvisePriority(id);
        ASSERT_TRUE(advised.ok());
        // Snapshot consistency: groups visible right now either contain
        // this scan or predate it, but are always internally complete.
        for (const ScanGroup& group : ssm.GroupsForTable(1)) {
          ASSERT_FALSE(group.members.empty());
          ASSERT_EQ(group.trailer, group.members.front());
          ASSERT_EQ(group.leader, group.members.back());
        }
      }
      ASSERT_TRUE(ssm.EndScan(id, clock.fetch_add(1)).ok());
    }
    witness.Exit();
  });

  EXPECT_TRUE(testutil::OverlapObservedOrSingleCoreNoted(
      "concurrent SSM lifecycles", witness.max_concurrent()));
  EXPECT_TRUE(ssm.CheckInvariants().ok());
  EXPECT_EQ(ssm.ActiveScanCount(), 0u);
  const SsmStats stats = ssm.stats();
  EXPECT_EQ(stats.scans_started, kWorkers * kLifecycles);
  EXPECT_EQ(stats.scans_ended, kWorkers * kLifecycles);
  EXPECT_EQ(stats.updates, kWorkers * kLifecycles * 16u);
}

TEST(ConcurrentSsmTest, SameScanUpdateContention) {
  // The morsel-worker pattern: one registered scan, many workers reporting
  // progress and asking for advice against the same id.
  constexpr size_t kWorkers = 8;
  constexpr uint64_t kUpdatesPerWorker = 64;
  ScanSharingManager ssm(Options());
  std::atomic<uint64_t> clock{1};
  std::atomic<uint64_t> pages{0};

  auto start = ssm.StartScan(Descriptor(), clock.fetch_add(1));
  ASSERT_TRUE(start.ok());
  const ScanId id = start->id;

  ThreadPool workers(kWorkers);
  workers.ParallelFor(kWorkers, [&](size_t w) {
    (void)w;
    for (uint64_t i = 0; i < kUpdatesPerWorker; ++i) {
      const uint64_t done = pages.fetch_add(16) + 16;
      const sim::PageId pos =
          kTableFirst + (done * 16) % (kTableEnd - kTableFirst);
      auto update = ssm.UpdateLocation(id, pos, done, clock.fetch_add(1));
      ASSERT_TRUE(update.ok());
      auto advised = ssm.AdvisePriority(id);
      ASSERT_TRUE(advised.ok());
      auto state = ssm.GetScanState(id);
      ASSERT_TRUE(state.ok());
      ASSERT_EQ(state->id, id);
    }
  });

  EXPECT_TRUE(ssm.CheckInvariants().ok());
  EXPECT_EQ(ssm.stats().updates, kWorkers * kUpdatesPerWorker);
  EXPECT_TRUE(ssm.EndScan(id, clock.fetch_add(1)).ok());
  EXPECT_EQ(ssm.ActiveScanCount(), 0u);
}

TEST(ConcurrentSsmTest, DistinctTablesProceedIndependently) {
  // Updates on different tables only share the registry in shared mode —
  // they must interleave freely and keep per-table state separate.
  constexpr size_t kWorkers = 4;
  ScanSharingManager ssm(Options());
  std::atomic<uint64_t> clock{1};

  std::vector<ScanId> ids(kWorkers);
  for (size_t w = 0; w < kWorkers; ++w) {
    auto start =
        ssm.StartScan(Descriptor(static_cast<uint32_t>(w + 1)), clock.fetch_add(1));
    ASSERT_TRUE(start.ok());
    ids[w] = start->id;
  }

  ThreadPool workers(kWorkers);
  workers.ParallelFor(kWorkers, [&](size_t w) {
    for (uint64_t i = 1; i <= 128; ++i) {
      const sim::PageId pos = kTableFirst + (i * 8) % (kTableEnd - kTableFirst);
      auto update = ssm.UpdateLocation(ids[w], pos, i * 8, clock.fetch_add(1));
      ASSERT_TRUE(update.ok());
    }
  });

  EXPECT_TRUE(ssm.CheckInvariants().ok());
  for (size_t w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(ssm.GroupsForTable(static_cast<uint32_t>(w + 1)).size(), 1u);
    EXPECT_TRUE(ssm.EndScan(ids[w], clock.fetch_add(1)).ok());
  }
  EXPECT_EQ(ssm.ActiveScanCount(), 0u);
}

}  // namespace
}  // namespace scanshare::ssm
