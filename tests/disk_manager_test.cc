#include "storage/disk_manager.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "testutil.h"

namespace scanshare::storage {
namespace {

TEST(DiskManagerTest, AllocateContiguousAssignsSequentialIds) {
  sim::Env env;
  DiskManager dm(&env);
  auto first = dm.AllocateContiguous(10);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0u);
  auto second = dm.AllocateContiguous(5);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 10u);
  EXPECT_EQ(dm.num_pages(), 15u);
}

TEST(DiskManagerTest, ZeroAllocationRejected) {
  sim::Env env;
  DiskManager dm(&env);
  EXPECT_EQ(dm.AllocateContiguous(0).status().code(),
            Status::Code::kInvalidArgument);
}

TEST(DiskManagerTest, PagesStartZeroed) {
  sim::Env env;
  DiskManager dm(&env);
  ASSERT_TRUE(dm.AllocateContiguous(1).ok());
  auto data = dm.PageData(0);
  ASSERT_TRUE(data.ok());
  for (uint32_t i = 0; i < dm.page_size(); ++i) {
    ASSERT_EQ((*data)[i], 0u) << "byte " << i;
  }
}

TEST(DiskManagerTest, WritesPersist) {
  sim::Env env;
  DiskManager dm(&env);
  ASSERT_TRUE(dm.AllocateContiguous(2).ok());
  auto w = dm.MutablePageData(1);
  ASSERT_TRUE(w.ok());
  std::memset(*w, 0x7F, 64);
  auto r = dm.PageData(1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0], 0x7F);
  EXPECT_EQ((*r)[63], 0x7F);
  EXPECT_EQ((*r)[64], 0x00);
}

TEST(DiskManagerTest, UnallocatedAccessRejected) {
  sim::Env env;
  DiskManager dm(&env);
  EXPECT_EQ(dm.PageData(0).status().code(), Status::Code::kOutOfRange);
  EXPECT_EQ(dm.MutablePageData(3).status().code(), Status::Code::kOutOfRange);
}

TEST(DiskManagerTest, ChargedReadHitsSimDisk) {
  sim::Env env;
  DiskManager dm(&env);
  ASSERT_TRUE(dm.AllocateContiguous(32).ok());
  auto io = dm.ChargedRead(0, 16, 0);
  ASSERT_TRUE(io.ok());
  EXPECT_EQ(env.disk().stats().pages_read, 16u);
  EXPECT_EQ(env.disk().stats().requests, 1u);
}

TEST(DiskManagerTest, ChargedReadBoundsChecked) {
  sim::Env env;
  DiskManager dm(&env);
  ASSERT_TRUE(dm.AllocateContiguous(8).ok());
  EXPECT_EQ(dm.ChargedRead(0, 16, 0).status().code(), Status::Code::kOutOfRange);
  EXPECT_EQ(dm.ChargedRead(8, 1, 0).status().code(), Status::Code::kOutOfRange);
  EXPECT_EQ(dm.ChargedRead(0, 0, 0).status().code(),
            Status::Code::kInvalidArgument);
}

TEST(DiskManagerTest, CustomPageSize) {
  sim::Env env;
  DiskManager dm(&env, 4096);
  EXPECT_EQ(dm.page_size(), 4096u);
  ASSERT_TRUE(dm.AllocateContiguous(1).ok());
  auto w = dm.MutablePageData(0);
  ASSERT_TRUE(w.ok());
  std::memset(*w, 1, 4096);  // Must not overflow.
}

TEST(DiskManagerTest, PageDataFaultRangeFailsOnlyChargedCopyPath) {
  sim::Env env;
  DiskManager dm(&env);
  ASSERT_TRUE(dm.AllocateContiguous(8).ok());
  dm.SetPageDataFaultRange(2, 4);

  // The charged read itself still succeeds — the media fault surfaces on
  // the per-page copy, which is what lets a buffer-pool extent install
  // fail midway after the disk request was charged.
  EXPECT_TRUE(dm.ChargedRead(0, 8, 0).ok());
  EXPECT_TRUE(dm.PageData(1).ok());
  EXPECT_EQ(dm.PageData(2).status().code(), Status::Code::kCorruption);
  EXPECT_EQ(dm.PageData(3).status().code(), Status::Code::kCorruption);
  EXPECT_TRUE(dm.PageData(4).ok());
  EXPECT_EQ(dm.page_data_faults_injected(), 2u);

  // The bulk-load path is unaffected.
  EXPECT_TRUE(dm.MutablePageData(2).ok());

  dm.ClearPageDataFaults();
  EXPECT_TRUE(dm.PageData(2).ok());
}

TEST(DiskManagerTest, ChargedReadPropagatesInjectedDiskFault) {
  sim::Env env;
  DiskManager dm(&env);
  ASSERT_TRUE(dm.AllocateContiguous(8).ok());
  sim::DiskFaultOptions faults;
  faults.fail_nth_read = 1;
  env.disk().SetFaults(faults);

  const sim::DiskStats before = env.disk().stats();
  EXPECT_EQ(dm.ChargedRead(0, 4, 0).status().code(),
            Status::Code::kCorruption);
  EXPECT_EQ(env.disk().stats().requests, before.requests);
  EXPECT_EQ(env.disk().stats().busy_micros, before.busy_micros);
  EXPECT_TRUE(dm.ChargedRead(0, 4, 0).ok());  // One-shot.
}

// Regression for the race the -Wthread-safety triage sweep surfaced:
// faults_injected_ was a plain uint64_t bumped inside const PageData(),
// which the partitioned buffer pool calls concurrently under *different*
// partition latches. With the fault range armed, parallel faulted reads
// lost increments; the counter is atomic now, so the total is exact.
// Run under TSan via the tsan preset to re-prove the access itself clean.
TEST(DiskManagerTest, FaultCounterExactUnderConcurrentFaultedReads) {
  sim::Env env;
  DiskManager dm(&env);
  ASSERT_TRUE(dm.AllocateContiguous(16).ok());
  dm.SetPageDataFaultRange(0, 16);  // Every PageData() call faults.

  constexpr int kThreads = 4;
  constexpr int kReadsPerThread = 2000;
  testutil::ConcurrencyWitness witness;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dm, &witness, t] {
      witness.Enter();
      for (int i = 0; i < kReadsPerThread; ++i) {
        const auto page = static_cast<sim::PageId>((i + t) % 16);
        EXPECT_EQ(dm.PageData(page).status().code(),
                  Status::Code::kCorruption);
      }
      witness.Exit();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(testutil::OverlapObservedOrSingleCoreNoted(
      "disk-manager fault counter", witness.max_concurrent()));

  EXPECT_EQ(dm.page_data_faults_injected(),
            static_cast<uint64_t>(kThreads) * kReadsPerThread);
}

}  // namespace
}  // namespace scanshare::storage
