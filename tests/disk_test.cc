#include "sim/disk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace scanshare::sim {
namespace {

DiskOptions SimpleOptions() {
  DiskOptions o;
  o.seek_micros = 5000;
  o.seek_per_page_micros = 0.0;  // Distance-independent for exact math.
  o.transfer_micros_per_page = 400;
  o.page_size_bytes = 32 * 1024;
  return o;
}

TEST(DiskTest, FirstReadAtHeadIsSequential) {
  Disk disk(SimpleOptions());
  auto r = disk.Read(0, 1, 0);  // Head starts at page 0.
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->seeked);
  EXPECT_EQ(r->start_micros, 0u);
  EXPECT_EQ(r->complete_micros, 400u);
  EXPECT_EQ(disk.stats().seeks, 0u);
  EXPECT_EQ(disk.stats().pages_read, 1u);
}

TEST(DiskTest, NonSequentialReadSeeks) {
  Disk disk(SimpleOptions());
  auto r = disk.Read(100, 1, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->seeked);
  EXPECT_EQ(r->complete_micros, 5400u);  // seek + 1 transfer
  EXPECT_EQ(disk.stats().seeks, 1u);
}

TEST(DiskTest, SequentialChainAvoidsSeeks) {
  Disk disk(SimpleOptions());
  Micros t = 0;
  for (int i = 0; i < 8; ++i) {
    auto r = disk.Read(static_cast<PageId>(i * 16), 16, t);
    ASSERT_TRUE(r.ok());
    t = r->complete_micros;
  }
  EXPECT_EQ(disk.stats().seeks, 0u);  // Head always rests where we read next.
  EXPECT_EQ(disk.stats().pages_read, 128u);
  EXPECT_EQ(disk.stats().requests, 8u);
}

TEST(DiskTest, AlternatingPositionsSeekEveryTime) {
  Disk disk(SimpleOptions());
  Micros t = 0;
  for (int i = 0; i < 10; ++i) {
    auto r = disk.Read(i % 2 == 0 ? 0 : 1000, 16, t);
    ASSERT_TRUE(r.ok());
    t = r->complete_micros;
  }
  // First read at page 0 is sequential; all later jumps seek.
  EXPECT_EQ(disk.stats().seeks, 9u);
}

TEST(DiskTest, QueueingDelaysConcurrentRequests) {
  Disk disk(SimpleOptions());
  auto r1 = disk.Read(0, 16, 0);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->complete_micros, 16 * 400u);
  // Issued while the device is still busy: waits for r1.
  auto r2 = disk.Read(16, 16, 100);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->start_micros, r1->complete_micros);
  EXPECT_EQ(disk.stats().queue_wait_micros, r1->complete_micros - 100);
}

TEST(DiskTest, IdleDeviceStartsImmediately) {
  Disk disk(SimpleOptions());
  auto r1 = disk.Read(0, 1, 0);
  ASSERT_TRUE(r1.ok());
  auto r2 = disk.Read(1, 1, 10000);  // Long after r1 completed.
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->start_micros, 10000u);
  EXPECT_EQ(disk.stats().queue_wait_micros, 0u);
}

TEST(DiskTest, DistanceDependentSeekCost) {
  DiskOptions o = SimpleOptions();
  o.seek_per_page_micros = 1.0;
  Disk disk(o);
  auto r = disk.Read(1000, 1, 0);
  ASSERT_TRUE(r.ok());
  // 5000 base + 1000 travel + 400 transfer.
  EXPECT_EQ(r->complete_micros, 6400u);
}

TEST(DiskTest, ZeroPageReadRejected) {
  Disk disk(SimpleOptions());
  auto r = disk.Read(0, 0, 0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

TEST(DiskTest, ByteAccounting) {
  Disk disk(SimpleOptions());
  ASSERT_TRUE(disk.Read(0, 4, 0).ok());
  EXPECT_EQ(disk.stats().bytes_read, 4u * 32 * 1024);
}

TEST(DiskTest, BusyTimeAccumulates) {
  Disk disk(SimpleOptions());
  ASSERT_TRUE(disk.Read(0, 2, 0).ok());    // 800us, no seek.
  ASSERT_TRUE(disk.Read(100, 1, 0).ok());  // 5400us with seek.
  EXPECT_EQ(disk.stats().busy_micros, 6200u);
}

TEST(DiskTest, ResetStatsPreservesHead) {
  Disk disk(SimpleOptions());
  ASSERT_TRUE(disk.Read(0, 16, 0).ok());
  disk.ResetStats();
  EXPECT_EQ(disk.stats().pages_read, 0u);
  EXPECT_EQ(disk.head_position(), 16u);  // Head state kept.
}

TEST(DiskTest, FullResetRestoresInitialState) {
  Disk disk(SimpleOptions());
  ASSERT_TRUE(disk.Read(100, 16, 0).ok());
  disk.Reset();
  EXPECT_EQ(disk.head_position(), 0u);
  EXPECT_EQ(disk.busy_until(), 0u);
  EXPECT_EQ(disk.stats().requests, 0u);
}

TEST(DiskTest, HeadRestsAfterLastPage) {
  Disk disk(SimpleOptions());
  ASSERT_TRUE(disk.Read(10, 6, 0).ok());
  EXPECT_EQ(disk.head_position(), 16u);
}

TEST(DiskFaultTest, NthReadFailsOnceAndChargesNothing) {
  Disk disk(SimpleOptions());
  DiskFaultOptions faults;
  faults.fail_nth_read = 2;
  disk.SetFaults(faults);

  ASSERT_TRUE(disk.Read(0, 4, 0).ok());
  const DiskStats before = disk.stats();
  const PageId head_before = disk.head_position();
  const Micros busy_before = disk.busy_until();

  auto failed = disk.Read(4, 4, 0);
  EXPECT_EQ(failed.status().code(), Status::Code::kCorruption);
  EXPECT_EQ(disk.faults_injected(), 1u);
  // An injected failure is invisible to every device observable.
  EXPECT_EQ(disk.stats().requests, before.requests);
  EXPECT_EQ(disk.stats().pages_read, before.pages_read);
  EXPECT_EQ(disk.stats().busy_micros, before.busy_micros);
  EXPECT_EQ(disk.stats().seeks, before.seeks);
  EXPECT_EQ(disk.head_position(), head_before);
  EXPECT_EQ(disk.busy_until(), busy_before);

  // One-shot: the same request succeeds on retry.
  EXPECT_TRUE(disk.Read(4, 4, 0).ok());
  EXPECT_EQ(disk.faults_injected(), 1u);
}

TEST(DiskFaultTest, RangeFaultFiresOnIntersection) {
  Disk disk(SimpleOptions());
  DiskFaultOptions faults;
  faults.fail_range_first = 10;
  faults.fail_range_end = 12;
  disk.SetFaults(faults);

  EXPECT_TRUE(disk.Read(0, 10, 0).ok());  // [0, 10) misses the range.
  EXPECT_EQ(disk.Read(8, 4, 0).status().code(), Status::Code::kCorruption);
  EXPECT_EQ(disk.Read(11, 1, 0).status().code(), Status::Code::kCorruption);
  EXPECT_TRUE(disk.Read(12, 4, 0).ok());  // Starts past the range.
  EXPECT_EQ(disk.faults_injected(), 2u);

  disk.ClearFaults();
  EXPECT_TRUE(disk.Read(10, 2, 0).ok());
}

TEST(DiskFaultTest, SeededRateIsDeterministic) {
  auto run = [](uint64_t seed) {
    Disk disk(SimpleOptions());
    DiskFaultOptions faults;
    faults.fail_rate = 0.3;
    faults.seed = seed;
    disk.SetFaults(faults);
    std::vector<bool> outcomes;
    Micros t = 0;
    for (int i = 0; i < 64; ++i) {
      auto r = disk.Read(static_cast<PageId>(i) * 4, 4, t);
      outcomes.push_back(r.ok());
      if (r.ok()) t = r->complete_micros;
    }
    return outcomes;
  };
  const auto a = run(7);
  const auto b = run(7);
  EXPECT_EQ(a, b);  // Same seed, same failures.
  // The rate actually fires somewhere in 64 draws at p = 0.3.
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST(DiskFaultTest, ResetReArmsRatherThanClears) {
  Disk disk(SimpleOptions());
  DiskFaultOptions faults;
  faults.fail_nth_read = 1;
  disk.SetFaults(faults);
  EXPECT_EQ(disk.Read(0, 1, 0).status().code(), Status::Code::kCorruption);
  EXPECT_TRUE(disk.Read(0, 1, 0).ok());  // One-shot knob disarmed.

  disk.Reset();  // An experiment run starts: the knob re-arms.
  EXPECT_TRUE(disk.faults().armed());
  EXPECT_EQ(disk.Read(0, 1, 0).status().code(), Status::Code::kCorruption);
  EXPECT_EQ(disk.faults_injected(), 2u);
}

}  // namespace
}  // namespace scanshare::sim
