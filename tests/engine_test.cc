#include "exec/engine.h"

#include <gtest/gtest.h>

#include "workload/queries.h"
#include "workload/tpch_gen.h"

namespace scanshare::exec {
namespace {

TEST(DatabaseTest, FramesForFractionUsesLoadedPages) {
  Database db;
  auto info = workload::GenerateLineitem(db.catalog(), "lineitem",
                                         workload::LineitemRowsForPages(200), 1);
  ASSERT_TRUE(info.ok());
  const uint64_t total = db.catalog()->TotalTablePages();
  EXPECT_EQ(db.FramesForFraction(0.05),
            std::max<size_t>(
                static_cast<size_t>(0.05 * static_cast<double>(total)), 32));
  // Floor of two extents for tiny fractions.
  EXPECT_EQ(db.FramesForFraction(0.0001), 32u);
}

TEST(DatabaseTest, RunStartsFromColdStateEachTime) {
  Database db;
  ASSERT_TRUE(workload::GenerateLineitem(db.catalog(), "lineitem",
                                         workload::LineitemRowsForPages(64), 1)
                  .ok());
  StreamSpec s;
  s.queries.push_back(workload::MakeQ6Like("lineitem"));

  RunConfig c;
  c.buffer.num_frames = 32;
  auto first = db.Run(c, {s});
  auto second = db.Run(c, {s});
  ASSERT_TRUE(first.ok() && second.ok());
  // Identical cold runs: every counter matches.
  EXPECT_EQ(first->makespan, second->makespan);
  EXPECT_EQ(first->disk.pages_read, second->disk.pages_read);
  EXPECT_EQ(first->buffer.misses, second->buffer.misses);
}

TEST(DatabaseTest, ModeSelectsReplacementPolicyAndOperators) {
  Database db;
  ASSERT_TRUE(workload::GenerateLineitem(db.catalog(), "lineitem",
                                         workload::LineitemRowsForPages(64), 1)
                  .ok());
  StreamSpec s;
  s.queries.push_back(workload::MakeQ6Like("lineitem"));

  RunConfig base;
  base.mode = ScanMode::kBaseline;
  base.buffer.num_frames = 32;
  auto base_run = db.Run(base, {s});
  ASSERT_TRUE(base_run.ok());
  EXPECT_EQ(base_run->ssm.scans_started, 0u);

  RunConfig shared = base;
  shared.mode = ScanMode::kShared;
  auto shared_run = db.Run(shared, {s});
  ASSERT_TRUE(shared_run.ok());
  EXPECT_EQ(shared_run->ssm.scans_started, 1u);
}

TEST(DatabaseTest, SsmOptionsInheritBufferGeometry) {
  Database db;
  ASSERT_TRUE(workload::GenerateLineitem(db.catalog(), "lineitem",
                                         workload::LineitemRowsForPages(64), 1)
                  .ok());
  StreamSpec s;
  s.queries.push_back(workload::MakeQ6Like("lineitem"));

  RunConfig c;
  c.mode = ScanMode::kShared;
  c.buffer.num_frames = 48;
  c.buffer.prefetch_extent_pages = 8;
  c.ssm.bufferpool_pages = 999999;       // Must be overridden.
  c.ssm.prefetch_extent_pages = 999999;  // Must be overridden.
  auto run = db.Run(c, {s});
  ASSERT_TRUE(run.ok());  // Would misbehave wildly if not overridden; smoke.
  EXPECT_GT(run->makespan, 0u);
}

TEST(DatabaseTest, QueryResultsIdenticalAcrossModes) {
  Database db;
  ASSERT_TRUE(workload::GenerateLineitem(db.catalog(), "lineitem",
                                         workload::LineitemRowsForPages(64), 7)
                  .ok());
  std::vector<StreamSpec> streams(3);
  streams[0].queries.push_back(workload::MakeQ1Like("lineitem"));
  streams[1].queries.push_back(workload::MakeQ6Like("lineitem"));
  streams[2].queries.push_back(workload::MakeMidWeight("lineitem"));

  RunConfig c;
  c.buffer.num_frames = 32;
  c.mode = ScanMode::kBaseline;
  auto base = db.Run(c, streams);
  c.mode = ScanMode::kShared;
  auto shared = db.Run(c, streams);
  ASSERT_TRUE(base.ok() && shared.ok());

  for (size_t s = 0; s < streams.size(); ++s) {
    const auto& bq = base->streams[s].queries[0].output;
    const auto& sq = shared->streams[s].queries[0].output;
    ASSERT_EQ(bq.groups.size(), sq.groups.size()) << "stream " << s;
    for (size_t g = 0; g < bq.groups.size(); ++g) {
      EXPECT_EQ(bq.groups[g].key, sq.groups[g].key);
      ASSERT_EQ(bq.groups[g].values.size(), sq.groups[g].values.size());
      for (size_t v = 0; v < bq.groups[g].values.size(); ++v) {
        EXPECT_NEAR(bq.groups[g].values[v], sq.groups[g].values[v],
                    std::abs(bq.groups[g].values[v]) * 1e-9 + 1e-9)
            << "stream " << s << " group " << g << " value " << v;
      }
    }
  }
}

}  // namespace
}  // namespace scanshare::exec
