// Copyright (c) scanshare authors. Licensed under the Apache License 2.0.
//
// EventHeap ordering contract: earliest time first, ties toward the lowest
// stream index — exactly the selection order of the linear minimum scan it
// replaced in the stream executor. The last test replays a simulated
// pop/advance/push schedule against a linear-scan reference model.

#include "exec/event_heap.h"

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace scanshare::exec {
namespace {

TEST(EventHeapTest, StartsEmpty) {
  EventHeap heap;
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
}

TEST(EventHeapTest, PopsInTimeOrder) {
  EventHeap heap;
  const std::vector<sim::Micros> times = {50, 10, 40, 20, 30, 60, 5};
  for (size_t i = 0; i < times.size(); ++i) heap.Push(times[i], i);
  ASSERT_EQ(heap.size(), times.size());

  std::vector<sim::Micros> sorted = times;
  std::sort(sorted.begin(), sorted.end());
  for (sim::Micros expect : sorted) {
    EXPECT_EQ(heap.Pop().time, expect);
  }
  EXPECT_TRUE(heap.empty());
}

TEST(EventHeapTest, TiesBreakTowardLowestIndex) {
  // Push equal-time events in scrambled index order; they must pop in
  // ascending index order (the executor's fairness/determinism contract).
  EventHeap heap;
  const std::vector<size_t> scrambled = {4, 0, 6, 2, 5, 1, 3};
  for (size_t idx : scrambled) heap.Push(100, idx);
  for (size_t expect = 0; expect < scrambled.size(); ++expect) {
    const EventHeap::Event e = heap.Pop();
    EXPECT_EQ(e.time, 100u);
    EXPECT_EQ(e.index, expect);
  }
}

TEST(EventHeapTest, MixedTimesAndTies) {
  EventHeap heap;
  heap.Push(20, 3);
  heap.Push(10, 2);
  heap.Push(20, 1);
  heap.Push(10, 0);
  heap.Push(15, 4);

  EXPECT_EQ(heap.Pop().index, 0u);  // t=10, lowest index.
  EXPECT_EQ(heap.Pop().index, 2u);  // t=10.
  EXPECT_EQ(heap.Pop().index, 4u);  // t=15.
  EXPECT_EQ(heap.Pop().index, 1u);  // t=20, lowest index.
  EXPECT_EQ(heap.Pop().index, 3u);  // t=20.
}

TEST(EventHeapTest, PeekMatchesPop) {
  EventHeap heap;
  heap.Push(7, 1);
  heap.Push(3, 2);
  EXPECT_EQ(heap.Peek().time, 3u);
  EXPECT_EQ(heap.Peek().index, 2u);
  const EventHeap::Event e = heap.Pop();
  EXPECT_EQ(e.time, 3u);
  EXPECT_EQ(e.index, 2u);
}

// Reference model: the executor's original selection loop — scan all
// unfinished streams, pick the strictly smallest ready time (strict `<`
// means the earliest-indexed stream wins ties).
size_t LinearPick(const std::vector<sim::Micros>& ready,
                  const std::vector<bool>& finished) {
  size_t pick = ready.size();
  for (size_t i = 0; i < ready.size(); ++i) {
    if (finished[i]) continue;
    if (pick == ready.size() || ready[i] < ready[pick]) pick = i;
  }
  return pick;
}

TEST(EventHeapTest, ReproducesLinearScanScheduleExactly) {
  // Simulated schedule: streams advance by deterministic pseudo-random
  // increments (with frequent ties thanks to coarse quantization) and
  // finish after a fixed number of steps. The pop order of the heap must
  // equal the pick order of the linear scan, element for element.
  const size_t kStreams = 17;
  const int kStepsPerStream = 200;
  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<sim::Micros> dist(0, 9);

  std::vector<sim::Micros> ready(kStreams);
  for (size_t i = 0; i < kStreams; ++i) ready[i] = dist(rng) * 100;

  // Pre-generate each stream's increment sequence so both models see the
  // same advances regardless of pick order.
  std::vector<std::vector<sim::Micros>> increments(kStreams);
  for (size_t i = 0; i < kStreams; ++i) {
    increments[i].resize(kStepsPerStream);
    for (int s = 0; s < kStepsPerStream; ++s) {
      increments[i][s] = dist(rng) * 100;  // Coarse → many exact ties.
    }
  }

  // Reference: linear scan.
  std::vector<size_t> linear_order;
  {
    std::vector<sim::Micros> r = ready;
    std::vector<bool> finished(kStreams, false);
    std::vector<int> steps(kStreams, 0);
    for (;;) {
      const size_t pick = LinearPick(r, finished);
      if (pick == r.size()) break;
      linear_order.push_back(pick);
      r[pick] += increments[pick][steps[pick]];
      if (++steps[pick] >= kStepsPerStream) finished[pick] = true;
    }
  }

  // Heap schedule.
  std::vector<size_t> heap_order;
  {
    EventHeap heap;
    heap.Reserve(kStreams);
    std::vector<sim::Micros> r = ready;
    std::vector<int> steps(kStreams, 0);
    for (size_t i = 0; i < kStreams; ++i) heap.Push(r[i], i);
    while (!heap.empty()) {
      const size_t pick = heap.Pop().index;
      heap_order.push_back(pick);
      r[pick] += increments[pick][steps[pick]];
      if (++steps[pick] < kStepsPerStream) heap.Push(r[pick], pick);
    }
  }

  ASSERT_EQ(linear_order.size(), heap_order.size());
  ASSERT_EQ(linear_order.size(), kStreams * kStepsPerStream);
  for (size_t i = 0; i < linear_order.size(); ++i) {
    ASSERT_EQ(linear_order[i], heap_order[i]) << "divergence at step " << i;
  }
}

}  // namespace
}  // namespace scanshare::exec
