#include "exec/expr.h"

#include <gtest/gtest.h>

namespace scanshare::exec {
namespace {

using storage::Column;
using storage::Schema;
using storage::Value;

Schema TestSchema() {
  return Schema({Column::Int64("i"), Column::Double("d"), Column::Char("c", 4)});
}

std::vector<uint8_t> Encode(const Schema& s, int64_t i, double d,
                            const std::string& c) {
  std::vector<uint8_t> out;
  EXPECT_TRUE(
      s.EncodeTuple({Value::Int64(i), Value::Double(d), Value::Char(c)}, &out)
          .ok());
  return out;
}

TEST(ExprTest, ConstEvaluates) {
  Schema s = TestSchema();
  Expr e = Expr::Const(2.5);
  ASSERT_TRUE(e.Bind(s).ok());
  auto t = Encode(s, 1, 1.0, "x");
  EXPECT_DOUBLE_EQ(e.Eval(s, t.data()), 2.5);
}

TEST(ExprTest, DoubleColumn) {
  Schema s = TestSchema();
  Expr e = Expr::Column("d");
  ASSERT_TRUE(e.Bind(s).ok());
  auto t = Encode(s, 1, 6.75, "x");
  EXPECT_DOUBLE_EQ(e.Eval(s, t.data()), 6.75);
}

TEST(ExprTest, Int64ColumnWidensToDouble) {
  Schema s = TestSchema();
  Expr e = Expr::Column("i");
  ASSERT_TRUE(e.Bind(s).ok());
  auto t = Encode(s, -12345, 0.0, "x");
  EXPECT_DOUBLE_EQ(e.Eval(s, t.data()), -12345.0);
}

TEST(ExprTest, Arithmetic) {
  Schema s = TestSchema();
  // (d * (1 - d)) + (i - 2)
  Expr e = Expr::Add(
      Expr::Mul(Expr::Column("d"), Expr::Sub(Expr::Const(1.0), Expr::Column("d"))),
      Expr::Sub(Expr::Column("i"), Expr::Const(2.0)));
  ASSERT_TRUE(e.Bind(s).ok());
  auto t = Encode(s, 10, 0.25, "x");
  EXPECT_DOUBLE_EQ(e.Eval(s, t.data()), 0.25 * 0.75 + 8.0);
}

TEST(ExprTest, UnknownColumnFailsBind) {
  Schema s = TestSchema();
  Expr e = Expr::Column("nope");
  EXPECT_EQ(e.Bind(s).code(), Status::Code::kNotFound);
}

TEST(ExprTest, CharColumnRejected) {
  Schema s = TestSchema();
  Expr e = Expr::Column("c");
  EXPECT_EQ(e.Bind(s).code(), Status::Code::kInvalidArgument);
}

TEST(ExprTest, BindErrorPropagatesFromChildren) {
  Schema s = TestSchema();
  Expr e = Expr::Mul(Expr::Const(2.0), Expr::Column("nope"));
  EXPECT_FALSE(e.Bind(s).ok());
}

TEST(ExprTest, CopySemanticsDeep) {
  Schema s = TestSchema();
  Expr a = Expr::Mul(Expr::Column("d"), Expr::Const(2.0));
  Expr b = a;  // Deep copy.
  ASSERT_TRUE(a.Bind(s).ok());
  ASSERT_TRUE(b.Bind(s).ok());
  auto t = Encode(s, 0, 3.0, "x");
  EXPECT_DOUBLE_EQ(a.Eval(s, t.data()), 6.0);
  EXPECT_DOUBLE_EQ(b.Eval(s, t.data()), 6.0);
}

TEST(ExprTest, AssignmentReplacesTree) {
  Schema s = TestSchema();
  Expr a = Expr::Const(1.0);
  a = Expr::Add(Expr::Const(2.0), Expr::Const(3.0));
  ASSERT_TRUE(a.Bind(s).ok());
  auto t = Encode(s, 0, 0.0, "x");
  EXPECT_DOUBLE_EQ(a.Eval(s, t.data()), 5.0);
  EXPECT_EQ(a.kind(), Expr::Kind::kAdd);
}

}  // namespace
}  // namespace scanshare::exec
