#include "ssm/group_builder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace scanshare::ssm {
namespace {

std::vector<ScanPoint> Points(std::initializer_list<std::pair<ScanId, sim::PageId>> ps) {
  std::vector<ScanPoint> out;
  for (const auto& [id, pos] : ps) out.push_back(ScanPoint{id, pos});
  return out;
}

const ScanGroup* GroupOf(const std::vector<ScanGroup>& groups, ScanId id) {
  for (const ScanGroup& g : groups) {
    if (std::find(g.members.begin(), g.members.end(), id) != g.members.end()) {
      return &g;
    }
  }
  return nullptr;
}

TEST(GroupBuilderTest, EmptyInput) {
  ScanCircle c(0, 100);
  EXPECT_TRUE(BuildScanGroups({}, c, 50).empty());
}

TEST(GroupBuilderTest, SingleScanIsSingletonGroup) {
  ScanCircle c(0, 100);
  auto groups = BuildScanGroups(Points({{1, 42}}), c, 50);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].leader, 1u);
  EXPECT_EQ(groups[0].trailer, 1u);
  EXPECT_EQ(groups[0].extent_pages, 0u);
}

// The paper's running example (Fig. 6 / §7.2): distances d(A,B)=40,
// d(B,C)=10, d(C,D)=15, d(E,F)=20 with buffer pool 50 must yield groups
// (A), (B,C,D), (E,F) with total extent 45 < 50.
TEST(GroupBuilderTest, PaperFig6Example) {
  // Table big enough that wrap gaps are never attractive. Positions:
  // A=0, B=40, C=50, D=65 on one table; E=0, F=20 on another circle.
  ScanCircle c1(0, 10000);
  auto g1 = BuildScanGroups(Points({{1, 0}, {2, 40}, {3, 50}, {4, 65}}), c1, 50);
  ScanCircle c2(0, 10000);
  auto g2 = BuildScanGroups(Points({{5, 0}, {6, 20}}), c2, 50 - 25);

  const ScanGroup* a = GroupOf(g1, 1);
  const ScanGroup* bcd = GroupOf(g1, 2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(bcd, nullptr);
  EXPECT_EQ(a->size(), 1u);  // A alone: d(A,B)=40 busts the budget.
  EXPECT_EQ(bcd->size(), 3u);
  EXPECT_EQ(bcd->trailer, 2u);  // B
  EXPECT_EQ(bcd->leader, 4u);   // D
  EXPECT_EQ(bcd->extent_pages, 25u);
  EXPECT_EQ(GroupOf(g1, 3), bcd);

  const ScanGroup* ef = GroupOf(g2, 5);
  ASSERT_NE(ef, nullptr);
  EXPECT_EQ(ef->size(), 2u);
  EXPECT_EQ(ef->trailer, 5u);  // E
  EXPECT_EQ(ef->leader, 6u);   // F
  EXPECT_EQ(ef->extent_pages, 20u);
}

TEST(GroupBuilderTest, AllMergeUnderLargeBudget) {
  ScanCircle c(0, 1000);
  auto groups = BuildScanGroups(Points({{1, 10}, {2, 20}, {3, 40}}), c, 1000);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 3u);
  EXPECT_EQ(groups[0].trailer, 1u);
  EXPECT_EQ(groups[0].leader, 3u);
  EXPECT_EQ(groups[0].extent_pages, 30u);
  // Members ordered back-to-front.
  EXPECT_EQ(groups[0].members, (std::vector<ScanId>{1, 2, 3}));
}

TEST(GroupBuilderTest, ZeroBudgetKeepsCoLocatedScansTogether) {
  ScanCircle c(0, 1000);
  // Distance-0 pairs cost nothing and always merge (they share perfectly).
  auto groups = BuildScanGroups(Points({{1, 10}, {2, 10}, {3, 500}}), c, 0);
  const ScanGroup* pair = GroupOf(groups, 1);
  ASSERT_NE(pair, nullptr);
  EXPECT_EQ(pair->size(), 2u);
  EXPECT_EQ(pair->extent_pages, 0u);
  EXPECT_EQ(GroupOf(groups, 3)->size(), 1u);
}

TEST(GroupBuilderTest, WrapAroundGapMerges) {
  ScanCircle c(0, 100);
  // 95 -> 5 is only 10 pages apart across the wrap.
  auto groups = BuildScanGroups(Points({{1, 95}, {2, 5}}), c, 20);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 2u);
  EXPECT_EQ(groups[0].trailer, 1u);  // 95 trails; 5 is ahead across the wrap.
  EXPECT_EQ(groups[0].leader, 2u);
  EXPECT_EQ(groups[0].extent_pages, 10u);
}

TEST(GroupBuilderTest, NeverClosesFullCircle) {
  ScanCircle c(0, 40);
  // Four scans evenly spaced; budget big enough for all gaps. Merging all
  // four gaps would close the circle; exactly one must stay open.
  auto groups = BuildScanGroups(Points({{1, 0}, {2, 10}, {3, 20}, {4, 30}}), c, 1000);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 4u);
  EXPECT_EQ(groups[0].extent_pages, 30u);  // 3 gaps of 10, not 4.
  EXPECT_NE(groups[0].leader, groups[0].trailer);
}

TEST(GroupBuilderTest, SmallestGapsWinTheBudget) {
  ScanCircle c(0, 10000);
  // Gaps: 1-2: 5, 2-3: 50, 3-4: 6. Budget 12 fits only {5, 6}.
  auto groups =
      BuildScanGroups(Points({{1, 100}, {2, 105}, {3, 155}, {4, 161}}), c, 12);
  EXPECT_EQ(GroupOf(groups, 1)->size(), 2u);
  EXPECT_EQ(GroupOf(groups, 3)->size(), 2u);
  EXPECT_NE(GroupOf(groups, 1), GroupOf(groups, 3));
}

TEST(GroupBuilderTest, EveryScanInExactlyOneGroup) {
  ScanCircle c(0, 500);
  auto points = Points({{1, 3}, {2, 77}, {3, 205}, {4, 206}, {5, 471}, {6, 208}});
  auto groups = BuildScanGroups(points, c, 64);
  std::multiset<ScanId> seen;
  for (const ScanGroup& g : groups) {
    EXPECT_FALSE(g.members.empty());
    EXPECT_EQ(g.members.front(), g.trailer);
    EXPECT_EQ(g.members.back(), g.leader);
    for (ScanId m : g.members) seen.insert(m);
  }
  EXPECT_EQ(seen.size(), points.size());
  for (const ScanPoint& p : points) EXPECT_EQ(seen.count(p.id), 1u);
}

TEST(GroupBuilderTest, GroupExtentMatchesTrailerToLeaderDistance) {
  ScanCircle c(0, 500);
  auto groups = BuildScanGroups(
      Points({{1, 3}, {2, 77}, {3, 205}, {4, 206}, {5, 471}, {6, 208}}), c, 64);
  for (const ScanGroup& g : groups) {
    // Reconstruct positions.
    auto pos = [&](ScanId id) -> sim::PageId {
      switch (id) {
        case 1: return 3;
        case 2: return 77;
        case 3: return 205;
        case 4: return 206;
        case 5: return 471;
        default: return 208;
      }
    };
    EXPECT_EQ(g.extent_pages, c.ForwardDistance(pos(g.trailer), pos(g.leader)));
  }
}

TEST(GroupBuilderTest, DeterministicAcrossShuffledInput) {
  ScanCircle c(0, 500);
  auto a = BuildScanGroups(
      Points({{1, 3}, {2, 77}, {3, 205}, {4, 206}, {5, 471}}), c, 64);
  auto b = BuildScanGroups(
      Points({{5, 471}, {3, 205}, {1, 3}, {4, 206}, {2, 77}}), c, 64);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].members, b[i].members);
    EXPECT_EQ(a[i].leader, b[i].leader);
    EXPECT_EQ(a[i].trailer, b[i].trailer);
  }
}

TEST(GroupBuilderTest, BudgetBoundProperty) {
  // Under any budget, the sum of group extents never exceeds it... except
  // for the free (distance-0) merges which cost nothing.
  ScanCircle c(0, 1 << 16);
  for (uint64_t budget : {0ull, 10ull, 100ull, 1000ull, 100000ull}) {
    auto groups = BuildScanGroups(
        Points({{1, 10}, {2, 1000}, {3, 1010}, {4, 5000}, {5, 5002}, {6, 40000}}),
        c, budget);
    uint64_t total = 0;
    for (const ScanGroup& g : groups) total += g.extent_pages;
    EXPECT_LE(total, budget) << "budget " << budget;
  }
}

}  // namespace
}  // namespace scanshare::ssm
