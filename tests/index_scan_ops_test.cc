// Block-index scan operators: correctness against equivalent table scans,
// wrap-around coverage, I/O behaviour, and end-to-end index-scan sharing.

#include <gtest/gtest.h>

#include "exec/engine.h"
#include "workload/mdc_gen.h"
#include "workload/queries.h"
#include "workload/tpch_gen.h"

namespace scanshare {
namespace {

using exec::Database;
using exec::RunConfig;
using exec::ScanMode;
using exec::StreamSpec;

class IndexScanOpsTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kRows = 60000;

  static workload::MdcOptions Options() {
    workload::MdcOptions o;
    o.block_pages = 4;
    o.num_regions = 2;
    o.days_per_key = 365;  // 7 keys.
    return o;
  }

  static Database* db() {
    static Database* instance = [] {
      auto* d = new Database();
      auto info = workload::GenerateMdcLineitem(d->catalog(), "mdc", kRows,
                                                2024, Options());
      EXPECT_TRUE(info.ok()) << info.status().ToString();
      return d;
    }();
    return instance;
  }

  static RunConfig Config(ScanMode mode, size_t frames = 24) {
    RunConfig c;
    c.mode = mode;
    c.buffer.num_frames = frames;
    c.buffer.prefetch_extent_pages = Options().block_pages;
    return c;
  }

  static exec::RunResult RunOne(const exec::QuerySpec& q, ScanMode mode) {
    StreamSpec s;
    s.queries.push_back(q);
    auto r = db()->Run(Config(mode), {s});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }
};

TEST_F(IndexScanOpsTest, FullRangeIndexScanSeesEveryRow) {
  auto run = RunOne(workload::MakeIndexCount("mdc", 0, 6), ScanMode::kBaseline);
  const auto& out = run.streams[0].queries[0].output;
  EXPECT_DOUBLE_EQ(out.groups[0].values[0], static_cast<double>(kRows));
}

TEST_F(IndexScanOpsTest, KeyRangeRestrictsRowsExactly) {
  // Count via index range [5,6] must equal a table-scan count with the
  // equivalent timekey predicate.
  auto via_index =
      RunOne(workload::MakeIndexCount("mdc", 5, 6), ScanMode::kBaseline);

  exec::QuerySpec table_scan;
  table_scan.name = "tscan";
  table_scan.table = "mdc";
  table_scan.predicate.And("l_timekey", exec::CompareOp::kGe,
                           storage::Value::Int64(5));
  table_scan.aggs.push_back(
      exec::AggSpec{"cnt", exec::AggOp::kCount, exec::Expr::Const(0.0)});
  table_scan.aggs.push_back(exec::AggSpec{"sum_qty", exec::AggOp::kSum,
                                          exec::Expr::Column("l_quantity")});
  auto via_table = RunOne(table_scan, ScanMode::kBaseline);

  const auto& gi = via_index.streams[0].queries[0].output.groups[0];
  const auto& gt = via_table.streams[0].queries[0].output.groups[0];
  EXPECT_DOUBLE_EQ(gi.values[0], gt.values[0]);
  EXPECT_NEAR(gi.values[1], gt.values[1], std::abs(gt.values[1]) * 1e-9);
}

TEST_F(IndexScanOpsTest, IndexScanReadsOnlyItsBlocks) {
  auto run = RunOne(workload::MakeIndexCount("mdc", 3, 3), ScanMode::kBaseline);
  auto index = db()->catalog()->GetBlockIndex("mdc");
  ASSERT_TRUE(index.ok());
  const uint64_t expected_pages =
      (*index)->BlockCountInRange(3, 3) * Options().block_pages;
  EXPECT_EQ(run.streams[0].queries[0].metrics.pages_scanned, expected_pages);
}

TEST_F(IndexScanOpsTest, EmptyKeyRangeFinishesImmediately) {
  auto run = RunOne(workload::MakeIndexCount("mdc", 100, 200),
                    ScanMode::kBaseline);
  const auto& q = run.streams[0].queries[0];
  EXPECT_EQ(q.metrics.pages_scanned, 0u);
  EXPECT_TRUE(q.output.groups.empty());
  // Shared mode handles it too (no ISM registration).
  auto shared =
      RunOne(workload::MakeIndexCount("mdc", 100, 200), ScanMode::kShared);
  EXPECT_EQ(shared.ism.scans_started, 0u);
}

TEST_F(IndexScanOpsTest, SharedIndexScanSameResultAlone) {
  auto base = RunOne(workload::MakeIndexQ6Like("mdc", 2, 5), ScanMode::kBaseline);
  auto shared = RunOne(workload::MakeIndexQ6Like("mdc", 2, 5), ScanMode::kShared);
  const auto& gb = base.streams[0].queries[0].output;
  const auto& gs = shared.streams[0].queries[0].output;
  ASSERT_EQ(gb.groups.size(), gs.groups.size());
  EXPECT_EQ(gb.rows_matched, gs.rows_matched);
  EXPECT_NEAR(gb.groups[0].values[0], gs.groups[0].values[0],
              std::abs(gb.groups[0].values[0]) * 1e-9);
  EXPECT_EQ(shared.ism.scans_started, 1u);
  EXPECT_EQ(shared.ism.scans_ended, 1u);
}

TEST_F(IndexScanOpsTest, SharedWrapAroundCoversEverything) {
  // Two concurrent identical index scans, the second placed mid-range:
  // both must still see every row of the range.
  StreamSpec s1, s2;
  s1.queries.push_back(workload::MakeIndexCount("mdc", 0, 6));
  s2 = s1;
  s2.start_delay = sim::Millis(30);
  auto run = db()->Run(Config(ScanMode::kShared), {s1, s2});
  ASSERT_TRUE(run.ok());
  for (const auto& stream : run->streams) {
    EXPECT_DOUBLE_EQ(stream.queries[0].output.groups[0].values[0],
                     static_cast<double>(kRows));
  }
  EXPECT_EQ(run->ism.scans_started, 2u);
}

TEST_F(IndexScanOpsTest, ConcurrentIndexScansShareReads) {
  StreamSpec s;
  s.queries.push_back(workload::MakeIndexQ6Like("mdc", 0, 6));
  StreamSpec s2 = s;
  s2.start_delay = sim::Millis(20);

  auto base = db()->Run(Config(ScanMode::kBaseline, 16), {s, s2});
  auto shared = db()->Run(Config(ScanMode::kShared, 16), {s, s2});
  ASSERT_TRUE(base.ok() && shared.ok());
  EXPECT_LT(shared->disk.pages_read, base->disk.pages_read * 8 / 10);
  EXPECT_LE(shared->makespan, base->makespan);
  EXPECT_GE(shared->ism.scans_joined, 1u);
}

TEST_F(IndexScanOpsTest, HotRangeScansFromManyAnalysts) {
  // The paper's motivating scenario on the index side: several analysts
  // scanning the most recent year through the block index.
  std::vector<StreamSpec> streams(4);
  for (size_t i = 0; i < streams.size(); ++i) {
    streams[i].start_delay = static_cast<sim::Micros>(i) * sim::Millis(15);
    streams[i].queries.push_back(workload::MakeIndexQ6Like("mdc", 6, 6));
  }
  auto base = db()->Run(Config(ScanMode::kBaseline, 16), streams);
  auto shared = db()->Run(Config(ScanMode::kShared, 16), streams);
  ASSERT_TRUE(base.ok() && shared.ok());
  // With a hot range this small and staggers this short, the baseline
  // already convoys perfectly by accident (every follower catches up
  // through still-buffered blocks), so sharing cannot *reduce* reads
  // here — it must merely stay close to the accidental optimum despite
  // its wrap-around placement.
  EXPECT_LE(shared->disk.pages_read, base->disk.pages_read * 5 / 4);
  for (size_t i = 0; i < streams.size(); ++i) {
    EXPECT_NEAR(base->streams[i].queries[0].output.groups[0].values[0],
                shared->streams[i].queries[0].output.groups[0].values[0],
                std::abs(base->streams[i].queries[0].output.groups[0].values[0]) *
                    1e-9);
  }
}

TEST_F(IndexScanOpsTest, MixedIndexAndTableScansCoexist) {
  std::vector<StreamSpec> streams(2);
  streams[0].queries.push_back(workload::MakeIndexQ6Like("mdc", 4, 6));
  exec::QuerySpec tscan;
  tscan.name = "T";
  tscan.table = "mdc";
  tscan.aggs.push_back(
      exec::AggSpec{"cnt", exec::AggOp::kCount, exec::Expr::Const(0.0)});
  streams[1].queries.push_back(tscan);
  auto run = db()->Run(Config(ScanMode::kShared), streams);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->ism.scans_started, 1u);   // The index scan.
  EXPECT_EQ(run->ssm.scans_started, 1u);   // The table scan.
  EXPECT_DOUBLE_EQ(run->streams[1].queries[0].output.groups[0].values[0],
                   static_cast<double>(kRows));
}

TEST_F(IndexScanOpsTest, IndexHeavyQueryIsCpuBound) {
  auto run = RunOne(workload::MakeIndexHeavy("mdc", 0, 6), ScanMode::kBaseline);
  const auto& m = run.streams[0].queries[0].metrics;
  EXPECT_GT(m.cpu, m.io_stall);
  EXPECT_EQ(run.streams[0].queries[0].output.groups.size(), 6u);
}

TEST_F(IndexScanOpsTest, IndexScanWithoutIndexFails) {
  Database fresh;
  ASSERT_TRUE(workload::GenerateMdcLineitem(fresh.catalog(), "no_index_here",
                                            1000, 1, Options())
                  .ok());
  // A different table without a block index.
  auto t2 = workload::GenerateLineitem(fresh.catalog(), "plain", 1000, 1);
  ASSERT_TRUE(t2.ok());
  StreamSpec s;
  s.queries.push_back(workload::MakeIndexCount("plain", 0, 6));
  RunConfig c;
  c.buffer.num_frames = 16;
  auto run = fresh.Run(c, {s});
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), Status::Code::kNotFound);
}

}  // namespace
}  // namespace scanshare
