#include "ssm/index_scan_sharing_manager.h"

#include <gtest/gtest.h>

namespace scanshare::ssm {
namespace {

using buffer::PagePriority;

IsmOptions TestOptions() {
  IsmOptions o;
  o.bufferpool_blocks = 16;
  o.distance_threshold_blocks = 2;
  o.max_wait_per_update = sim::Seconds(1000);
  return o;
}

IndexScanDescriptor Desc(uint32_t index = 1, int64_t lo = 0, int64_t hi = 6,
                         uint64_t blocks = 70) {
  IndexScanDescriptor d;
  d.index_id = index;
  d.start_key = lo;
  d.end_key = hi;
  d.estimated_blocks = blocks;
  d.estimated_duration = sim::Seconds(10);
  return d;
}

TEST(IsmTest, FirstScanStartsAtRangeBegin) {
  IndexScanSharingManager ism(TestOptions());
  auto start = ism.StartIndexScan(Desc(), 0);
  ASSERT_TRUE(start.ok());
  EXPECT_FALSE(start->placed);
  EXPECT_EQ(start->joined_scan, kInvalidScanId);
  EXPECT_EQ(ism.ActiveScanCount(), 1u);
}

TEST(IsmTest, DescriptorValidation) {
  IndexScanSharingManager ism(TestOptions());
  IndexScanDescriptor d = Desc();
  d.end_key = d.start_key - 1;
  EXPECT_FALSE(ism.StartIndexScan(d, 0).ok());
  d = Desc();
  d.estimated_blocks = 0;
  EXPECT_FALSE(ism.StartIndexScan(d, 0).ok());
  d = Desc();
  d.estimated_duration = 0;
  EXPECT_FALSE(ism.StartIndexScan(d, 0).ok());
  d = Desc();
  d.throttle_tolerance = -1;
  EXPECT_FALSE(ism.StartIndexScan(d, 0).ok());
}

TEST(IsmTest, SecondScanJoinsAndInheritsAnchor) {
  IndexScanSharingManager ism(TestOptions());
  auto a = ism.StartIndexScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  // A progresses to (key 2, pos 1) after 20 blocks.
  ASSERT_TRUE(
      ism.UpdateIndexScan(a->id, IndexScanLocation{2, 1}, 20, sim::Seconds(1))
          .ok());

  auto b = ism.StartIndexScan(Desc(), sim::Seconds(1));
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->placed);
  EXPECT_EQ(b->joined_scan, a->id);
  EXPECT_EQ(b->start_location.key, 2);
  EXPECT_EQ(b->start_location.pos_in_key, 1u);

  auto sa = ism.GetScanState(a->id);
  auto sb = ism.GetScanState(b->id);
  ASSERT_TRUE(sa.ok() && sb.ok());
  EXPECT_EQ(sa->anchor, sb->anchor);
  EXPECT_EQ(sb->anchor_offset, sa->anchor_offset);
  // Same anchor => one group of two.
  auto groups = ism.GroupsForIndex(1);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 2u);
}

TEST(IsmTest, ScanOutsideRangeNotJoined) {
  IndexScanSharingManager ism(TestOptions());
  auto a = ism.StartIndexScan(Desc(1, 0, 6), 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(
      ism.UpdateIndexScan(a->id, IndexScanLocation{1, 0}, 10, sim::Seconds(1))
          .ok());
  // New scan covers keys [4, 6]; A is at key 1 — no join.
  auto b = ism.StartIndexScan(Desc(1, 4, 6, 30), sim::Seconds(1));
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b->placed);
  // Separate anchors => separate groups.
  EXPECT_EQ(ism.GroupsForIndex(1).size(), 2u);
}

TEST(IsmTest, DifferentIndexesNeverInteract) {
  IndexScanSharingManager ism(TestOptions());
  auto a = ism.StartIndexScan(Desc(1), 0);
  auto b = ism.StartIndexScan(Desc(2), 0);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(b->placed);
  EXPECT_EQ(ism.GroupsForIndex(1).size(), 1u);
  EXPECT_EQ(ism.GroupsForIndex(2).size(), 1u);
}

TEST(IsmTest, LeaderThrottledOnOffsetGap) {
  IndexScanSharingManager ism(TestOptions());
  auto a = ism.StartIndexScan(Desc(), 0);
  auto b = ism.StartIndexScan(Desc(), 0);  // Joins A at offset 0.
  ASSERT_TRUE(a.ok() && b.ok());
  // B crawls 1 block/s; A sprints 10 blocks ahead (gap 9 > threshold 2).
  ASSERT_TRUE(
      ism.UpdateIndexScan(b->id, IndexScanLocation{0, 1}, 1, sim::Seconds(1))
          .ok());
  auto ua =
      ism.UpdateIndexScan(a->id, IndexScanLocation{1, 0}, 10, sim::Seconds(1));
  ASSERT_TRUE(ua.ok());
  EXPECT_TRUE(ua->is_leader);
  EXPECT_EQ(ua->gap_blocks, 9u);
  // Excess 7 blocks at 1 block/s -> 7 s wait.
  EXPECT_EQ(ua->wait, sim::Seconds(7));
  EXPECT_EQ(ism.stats().throttle_events, 1u);
}

TEST(IsmTest, PriorityAdviceLeaderHighTrailerLow) {
  IndexScanSharingManager ism(TestOptions());
  auto a = ism.StartIndexScan(Desc(), 0);
  auto b = ism.StartIndexScan(Desc(), 0);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(
      ism.UpdateIndexScan(b->id, IndexScanLocation{0, 1}, 1, sim::Seconds(1))
          .ok());
  auto ua =
      ism.UpdateIndexScan(a->id, IndexScanLocation{0, 4}, 4, sim::Seconds(1));
  ASSERT_TRUE(ua.ok());
  EXPECT_EQ(ua->priority, PagePriority::kHigh);  // Leader.
  auto ub = ism.UpdateIndexScan(b->id, IndexScanLocation{0, 2}, 2,
                                sim::Seconds(1) + 1);
  ASSERT_TRUE(ub.ok());
  EXPECT_TRUE(ub->is_trailer);
  EXPECT_EQ(ub->priority, PagePriority::kLow);  // Successor 2 blocks ahead.
}

TEST(IsmTest, CoLocatedTrailerKeptHigh) {
  IndexScanSharingManager ism(TestOptions());
  auto a = ism.StartIndexScan(Desc(), 0);
  auto b = ism.StartIndexScan(Desc(), 0);
  ASSERT_TRUE(a.ok() && b.ok());
  // Both at the same offset: the tie-trailer must not mark Low.
  auto ub =
      ism.UpdateIndexScan(b->id, IndexScanLocation{0, 0}, 0, sim::Seconds(1));
  ASSERT_TRUE(ub.ok());
  if (ub->is_trailer && ub->group_size >= 2) {
    EXPECT_EQ(ub->priority, PagePriority::kHigh);
  }
}

TEST(IsmTest, AnchorMergeOnReachingAnotherAnchor) {
  IndexScanSharingManager ism(TestOptions());
  // A starts fresh at range begin: anchor at (0,0).
  auto a = ism.StartIndexScan(Desc(1, 0, 6), 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(
      ism.UpdateIndexScan(a->id, IndexScanLocation{3, 0}, 30, sim::Seconds(1))
          .ok());
  // B covers [3,6] only; A at key 3 is in range -> B joins A's anchor.
  auto b = ism.StartIndexScan(Desc(1, 3, 6, 40), sim::Seconds(1));
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->placed);

  // C covers [2,6]; starts fresh at (2,0) with its own anchor.
  auto c = ism.StartIndexScan(Desc(1, 2, 2, 10), sim::Seconds(1));
  ASSERT_TRUE(c.ok());
  // A wrapped around and reaches (2,0) == C's anchor: merge.
  auto ua = ism.UpdateIndexScan(a->id, IndexScanLocation{2, 0}, 60,
                                sim::Seconds(2));
  ASSERT_TRUE(ua.ok());
  EXPECT_TRUE(ua->anchor_merged);
  auto sa = ism.GetScanState(a->id);
  auto sc = ism.GetScanState(c->id);
  ASSERT_TRUE(sa.ok() && sc.ok());
  EXPECT_EQ(sa->anchor, sc->anchor);
  EXPECT_EQ(sa->anchor_offset, 0u);  // A is AT the anchor location.
  EXPECT_EQ(ism.stats().anchor_merges, 1u);
}

TEST(IsmTest, LastFinishedLocationHarvested) {
  IndexScanSharingManager ism(TestOptions());
  auto a = ism.StartIndexScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(
      ism.UpdateIndexScan(a->id, IndexScanLocation{5, 2}, 55, sim::Seconds(5))
          .ok());
  ASSERT_TRUE(ism.EndIndexScan(a->id, sim::Seconds(6)).ok());
  EXPECT_EQ(ism.ActiveScanCount(), 0u);

  auto b = ism.StartIndexScan(Desc(), sim::Seconds(7));
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->placed);
  EXPECT_EQ(b->start_location.key, 5);
  EXPECT_EQ(b->start_location.pos_in_key, 2u);
}

TEST(IsmTest, FairnessCapWithTolerance) {
  IsmOptions o = TestOptions();
  o.fairness_cap = 0.5;
  IndexScanSharingManager ism(o);
  IndexScanDescriptor fast = Desc();
  fast.estimated_duration = sim::Seconds(2);  // Cap = 1 s.
  fast.throttle_tolerance = 2.0;              // Budget = 2 s.
  auto a = ism.StartIndexScan(fast, 0);
  auto b = ism.StartIndexScan(Desc(), 0);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(
      ism.UpdateIndexScan(b->id, IndexScanLocation{0, 1}, 1, sim::Seconds(1))
          .ok());
  // Gap 11 blocks (within the 16-block grouping budget), crawling trailer
  // at 1 block/s: raw wait (11-2)/1 = 9 s, clamped to the 2 s budget.
  auto ua =
      ism.UpdateIndexScan(a->id, IndexScanLocation{1, 2}, 12, sim::Seconds(1));
  ASSERT_TRUE(ua.ok());
  EXPECT_EQ(ua->wait, sim::Seconds(2));
  auto state = ism.GetScanState(a->id);
  EXPECT_TRUE(state->throttling_exhausted);
}

TEST(IsmTest, DisabledManagerDoesNothingSmart) {
  IsmOptions o = TestOptions();
  o.enabled = false;
  IndexScanSharingManager ism(o);
  auto a = ism.StartIndexScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(
      ism.UpdateIndexScan(a->id, IndexScanLocation{3, 0}, 30, sim::Seconds(1))
          .ok());
  auto b = ism.StartIndexScan(Desc(), sim::Seconds(1));
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b->placed);
}

TEST(IsmTest, UpdateUnknownScanFails) {
  IndexScanSharingManager ism(TestOptions());
  EXPECT_EQ(ism.UpdateIndexScan(99, IndexScanLocation{0, 0}, 0, 0)
                .status()
                .code(),
            Status::Code::kNotFound);
  EXPECT_EQ(ism.EndIndexScan(99, 0).code(), Status::Code::kNotFound);
}

TEST(IsmTest, StatsCountLifecycle) {
  IndexScanSharingManager ism(TestOptions());
  auto a = ism.StartIndexScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(
      ism.UpdateIndexScan(a->id, IndexScanLocation{1, 0}, 10, 1000).ok());
  ASSERT_TRUE(ism.EndIndexScan(a->id, 2000).ok());
  EXPECT_EQ(ism.stats().scans_started, 1u);
  EXPECT_EQ(ism.stats().updates, 1u);
  EXPECT_EQ(ism.stats().scans_ended, 1u);
}

// ---- linear group builder unit checks (the partial-order Fig. 14) ----

TEST(LinearGroupsTest, OnlySameAnchorMerges) {
  std::vector<LinearScanPoint> points = {
      {1, /*anchor*/ 10, /*offset*/ 0},
      {2, 10, 5},
      {3, 20, 4},  // Different anchor: incomparable with 1 and 2.
  };
  auto groups = BuildScanGroupsLinear(points, 100);
  ASSERT_EQ(groups.size(), 2u);
}

TEST(LinearGroupsTest, GlobalBudgetAcrossAnchorGroups) {
  // Paper Fig. 6 example on the linear axis: d(A,B)=40, d(B,C)=10,
  // d(C,D)=15 in one anchor group; d(E,F)=20 in another; budget 50 =>
  // groups (A), (B,C,D), (E,F) with total extent 45.
  std::vector<LinearScanPoint> points = {
      {1, 1, 0},   // A
      {2, 1, 40},  // B
      {3, 1, 50},  // C
      {4, 1, 65},  // D
      {5, 2, 0},   // E
      {6, 2, 20},  // F
  };
  auto groups = BuildScanGroupsLinear(points, 50);
  ASSERT_EQ(groups.size(), 3u);
  uint64_t total_extent = 0;
  for (const auto& g : groups) total_extent += g.extent_pages;
  EXPECT_EQ(total_extent, 45u);
  for (const auto& g : groups) {
    if (g.size() == 3) {
      EXPECT_EQ(g.trailer, 2u);
      EXPECT_EQ(g.leader, 4u);
      EXPECT_EQ(g.extent_pages, 25u);
    }
    if (g.size() == 2) {
      EXPECT_EQ(g.trailer, 5u);
      EXPECT_EQ(g.leader, 6u);
      EXPECT_EQ(g.extent_pages, 20u);
    }
    if (g.size() == 1) {
      EXPECT_EQ(g.members[0], 1u);
    }
  }
}

TEST(LinearGroupsTest, EmptyAndSingle) {
  EXPECT_TRUE(BuildScanGroupsLinear({}, 10).empty());
  auto one = BuildScanGroupsLinear({{7, 1, 3}}, 10);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].leader, 7u);
  EXPECT_EQ(one[0].trailer, 7u);
}

}  // namespace
}  // namespace scanshare::ssm
