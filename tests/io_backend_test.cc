// Copyright (c) scanshare authors. Licensed under the Apache License 2.0.
//
// IoBackend contract tests: the sim backend's bytes match the page store,
// the file backend round-trips a real table image with sane seek
// accounting, and both backends surface the same faults at the same
// protocol step (Charge vs StartBytes) — the parity FetchSlow's push
// branch depends on.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>

#include "io/file_backend.h"
#include "io/sim_backend.h"
#include "testutil.h"

namespace scanshare {
namespace {

std::unique_ptr<exec::Database> MakeDb(uint64_t pages = 64) {
  return testutil::MakeLineitemDb(pages, /*seed=*/7);
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

/// Reads [first, first+count) through the full three-step protocol and
/// compares every page against the DiskManager's page store.
void ExpectBackendBytesMatchStore(io::IoBackend* backend,
                                  storage::DiskManager* dm, sim::PageId first,
                                  uint64_t count) {
  auto charge = backend->Charge(first, count, /*now=*/0);
  ASSERT_TRUE(charge.ok()) << charge.status().ToString();
  io::AlignedBuffer buf = io::AllocateIoBuffer(count * backend->page_size());
  io::ReadToken token = io::kNoToken;
  Status start = backend->StartBytes(first, count, buf.get(), &token);
  ASSERT_TRUE(start.ok()) << start.ToString();
  Status join = backend->Join(token);
  ASSERT_TRUE(join.ok()) << join.ToString();
  for (uint64_t i = 0; i < count; ++i) {
    auto expected = dm->PageData(first + i);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(std::memcmp(buf.get() + i * backend->page_size(),
                          expected.value(), backend->page_size()),
              0)
        << "page " << first + i << " differs from the page store";
  }
}

TEST(SimIoBackendTest, BytesMatchPageStore) {
  auto db = MakeDb();
  io::SimIoBackend backend(db->disk_manager());
  EXPECT_STREQ(backend.name(), "sim");
  ExpectBackendBytesMatchStore(&backend, db->disk_manager(), 0, 4);
  ExpectBackendBytesMatchStore(&backend, db->disk_manager(), 17, 3);
  // No real device behind it.
  EXPECT_EQ(backend.real_stats().reads, 0u);
  EXPECT_EQ(backend.real_stats().bytes_read, 0u);
}

TEST(SimIoBackendTest, ChargeFaultChargesNothing) {
  auto db = MakeDb();
  io::SimIoBackend backend(db->disk_manager());
  sim::DiskFaultOptions faults;
  faults.fail_nth_read = 1;
  db->env()->disk().SetFaults(faults);
  const sim::DiskStats before = db->env()->disk().stats();
  auto charge = backend.Charge(0, 4, 0);
  EXPECT_FALSE(charge.ok());
  EXPECT_EQ(charge.status().code(), Status::Code::kCorruption);
  const sim::DiskStats after = db->env()->disk().stats();
  EXPECT_EQ(after.requests, before.requests);
  EXPECT_EQ(after.pages_read, before.pages_read);
  db->env()->disk().SetFaults(sim::DiskFaultOptions{});
}

TEST(SimIoBackendTest, MediaFaultSurfacesAtStartBytesAfterCharge) {
  auto db = MakeDb();
  io::SimIoBackend backend(db->disk_manager());
  db->disk_manager()->SetPageDataFaultRange(2, 3);
  auto charge = backend.Charge(0, 4, 0);
  ASSERT_TRUE(charge.ok());  // The charge itself succeeds...
  io::AlignedBuffer buf = io::AllocateIoBuffer(4 * backend.page_size());
  io::ReadToken token = io::kNoToken;
  Status start = backend.StartBytes(0, 4, buf.get(), &token);
  EXPECT_FALSE(start.ok());  // ...the byte copy hits the media fault.
  EXPECT_EQ(start.code(), Status::Code::kCorruption);
  db->disk_manager()->ClearPageDataFaults();
}

TEST(FileIoBackendTest, RoundTripAndSeekAccounting) {
  auto db = MakeDb();
  const std::string path = TempPath("io_backend_roundtrip.tbl");
  Status write = io::FileIoBackend::WriteTableFile(*db->disk_manager(), path);
  ASSERT_TRUE(write.ok()) << write.ToString();

  io::FileBackendOptions options;
  options.path = path;
  options.workers = 2;
  auto opened = io::FileIoBackend::Open(db->disk_manager(), options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  io::FileIoBackend* backend = opened.value().get();
  EXPECT_STREQ(backend->name(), "file");

  // Two sequential extents then a jump: bytes must match the page store,
  // and the submission-ordered seek rule must count the first read (cold
  // head) and the jump but not the successor read.
  ExpectBackendBytesMatchStore(backend, db->disk_manager(), 0, 4);
  ExpectBackendBytesMatchStore(backend, db->disk_manager(), 4, 4);
  ExpectBackendBytesMatchStore(backend, db->disk_manager(), 32, 4);

  const io::RealIoStats real = backend->real_stats();
  EXPECT_EQ(real.reads, 3u);
  EXPECT_EQ(real.pages_read, 12u);
  EXPECT_EQ(real.bytes_read, 12u * backend->page_size());
  EXPECT_EQ(real.seeks, 2u);
}

TEST(FileIoBackendTest, OpenRejectsShortFile) {
  auto db = MakeDb();
  const std::string path = TempPath("io_backend_short.tbl");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not a table image";
  }
  io::FileBackendOptions options;
  options.path = path;
  auto opened = io::FileIoBackend::Open(db->disk_manager(), options);
  EXPECT_FALSE(opened.ok());
}

TEST(FileIoBackendTest, VirtualChargeIsBackendIndependent) {
  // The same charge sequence through the sim backend and the file backend
  // must produce identical virtual disk counters: backends differ only in
  // where bytes move (io_backend.h).
  auto db = MakeDb();
  const std::string path = TempPath("io_backend_parity.tbl");
  ASSERT_TRUE(io::FileIoBackend::WriteTableFile(*db->disk_manager(), path).ok());

  const auto run_charges = [&](io::IoBackend* backend) {
    db->env()->disk().Reset();
    EXPECT_TRUE(backend->Charge(0, 4, 0).ok());
    EXPECT_TRUE(backend->Charge(4, 4, 100).ok());
    EXPECT_TRUE(backend->Charge(40, 8, 200).ok());
    return db->env()->disk().stats();
  };

  io::SimIoBackend sim_backend(db->disk_manager());
  const sim::DiskStats sim_stats = run_charges(&sim_backend);

  io::FileBackendOptions options;
  options.path = path;
  auto opened = io::FileIoBackend::Open(db->disk_manager(), options);
  ASSERT_TRUE(opened.ok());
  const sim::DiskStats file_stats = run_charges(opened.value().get());

  EXPECT_EQ(sim_stats.requests, file_stats.requests);
  EXPECT_EQ(sim_stats.pages_read, file_stats.pages_read);
  EXPECT_EQ(sim_stats.seeks, file_stats.seeks);
  EXPECT_EQ(sim_stats.busy_micros, file_stats.busy_micros);
}

TEST(FileIoBackendTest, ChargeFaultParityWithSim) {
  // A disk fault armed on the shared sim::Disk fails the Charge step with
  // the same status through either backend — fault injection lives below
  // the backend seam.
  auto db = MakeDb();
  const std::string path = TempPath("io_backend_fault.tbl");
  ASSERT_TRUE(io::FileIoBackend::WriteTableFile(*db->disk_manager(), path).ok());
  io::FileBackendOptions options;
  options.path = path;
  auto opened = io::FileIoBackend::Open(db->disk_manager(), options);
  ASSERT_TRUE(opened.ok());

  sim::DiskFaultOptions faults;
  faults.fail_range_first = 8;
  faults.fail_range_end = 12;
  db->env()->disk().SetFaults(faults);

  io::SimIoBackend sim_backend(db->disk_manager());
  auto sim_charge = sim_backend.Charge(8, 4, 0);
  auto file_charge = opened.value()->Charge(8, 4, 0);
  ASSERT_FALSE(sim_charge.ok());
  ASSERT_FALSE(file_charge.ok());
  EXPECT_EQ(sim_charge.status().code(), file_charge.status().code());
  db->env()->disk().SetFaults(sim::DiskFaultOptions{});
}

}  // namespace
}  // namespace scanshare
