// Copyright (c) scanshare authors. Licensed under the Apache License 2.0.
//
// Push-pipeline tests, two layers:
//
//   Prefetcher unit tests   drive Pump/Acquire directly against a real
//                           ScanSharingManager — window issue, prefetch
//                           hits, sync fallback, stale drops after a
//                           frontier move or scan end, and queue-bound
//                           backpressure.
//   Engine integration      push-sim runs produce the same query outputs
//                           as the legacy pull path, are bit-reproducible
//                           across repetitions, actually hit the ready
//                           queue, and surface injected faults with the
//                           same status the pull path reports.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "io/prefetcher.h"
#include "io/sim_backend.h"
#include "ssm/scan_sharing_manager.h"
#include "testutil.h"

namespace scanshare {
namespace {

constexpr uint64_t kExtent = 16;
constexpr uint64_t kTablePages = 256;

/// A full-table scan descriptor over [0, kTablePages).
ssm::ScanDescriptor FullScan() {
  ssm::ScanDescriptor desc;
  desc.table_id = 1;
  desc.table_first = 0;
  desc.table_end = kTablePages;
  desc.range_first = 0;
  desc.range_end = kTablePages;
  desc.estimated_pages = kTablePages;
  desc.estimated_duration = sim::Seconds(1);
  return desc;
}

ssm::SsmOptions SsmOpts() {
  ssm::SsmOptions options;
  options.bufferpool_pages = 1024;
  options.prefetch_extent_pages = kExtent;
  return options;
}

class PrefetcherTest : public testing::Test {
 protected:
  PrefetcherTest()
      : db_(testutil::MakeLineitemDb(kTablePages, /*seed=*/11)),
        backend_(db_->disk_manager()),
        ssm_(SsmOpts(), nullptr, nullptr) {}

  io::Prefetcher MakePrefetcher(uint64_t depth, uint64_t queue_bound = 0) {
    io::PrefetchOptions options;
    options.depth = depth;
    options.queue_bound = queue_bound;
    return io::Prefetcher(&backend_, &ssm_, /*residency=*/nullptr, kExtent,
                          options);
  }

  std::unique_ptr<exec::Database> db_;
  io::SimIoBackend backend_;
  ssm::ScanSharingManager ssm_;
};

TEST_F(PrefetcherTest, PumpIssuesLeaderWindowAndAcquireHits) {
  auto started = ssm_.StartScan(FullScan(), 0);
  ASSERT_TRUE(started.ok());
  io::Prefetcher pf = MakePrefetcher(/*depth=*/3);

  pf.Pump(0);
  EXPECT_EQ(pf.ready_extents(), 3u);  // Extents 0, 16, 32 ahead of page 0.
  EXPECT_EQ(pf.stats().submitted, 3u);

  io::ExtentRead read = pf.Acquire(0, kExtent, 0);
  EXPECT_TRUE(read.charged);
  EXPECT_TRUE(read.from_queue);
  ASSERT_TRUE(read.bytes.ok()) << read.bytes.ToString();
  EXPECT_EQ(pf.stats().prefetch_hits, 1u);
  EXPECT_EQ(pf.ready_extents(), 2u);

  // The popped bytes are the real page images.
  for (uint64_t i = 0; i < kExtent; ++i) {
    auto expected = db_->disk_manager()->PageData(i);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(std::memcmp(read.data.get() + i * backend_.page_size(),
                          expected.value(), backend_.page_size()),
              0);
  }
  ASSERT_TRUE(ssm_.EndScan(started->id, 0).ok());
}

TEST_F(PrefetcherTest, RepeatPumpIsIdempotentWhileFrontierHolds) {
  auto started = ssm_.StartScan(FullScan(), 0);
  ASSERT_TRUE(started.ok());
  io::Prefetcher pf = MakePrefetcher(/*depth=*/3);
  pf.Pump(0);
  pf.Pump(100);
  pf.Pump(200);
  // The window did not move, so nothing new was issued or dropped.
  EXPECT_EQ(pf.stats().submitted, 3u);
  EXPECT_EQ(pf.stats().dropped_stale, 0u);
  EXPECT_EQ(pf.ready_extents(), 3u);
  ASSERT_TRUE(ssm_.EndScan(started->id, 0).ok());
}

TEST_F(PrefetcherTest, AcquireFallsBackToSyncOutsideWindow) {
  auto started = ssm_.StartScan(FullScan(), 0);
  ASSERT_TRUE(started.ok());
  io::Prefetcher pf = MakePrefetcher(/*depth=*/3);
  pf.Pump(0);

  io::ExtentRead read = pf.Acquire(128, kExtent, 0);  // Far from the window.
  EXPECT_TRUE(read.charged);
  EXPECT_FALSE(read.from_queue);
  ASSERT_TRUE(read.bytes.ok());
  EXPECT_EQ(pf.stats().sync_reads, 1u);
  EXPECT_EQ(pf.stats().prefetch_hits, 0u);
  ASSERT_TRUE(ssm_.EndScan(started->id, 0).ok());
}

TEST_F(PrefetcherTest, FrontierMoveDropsStaleAndNeverServesOldExtents) {
  auto started = ssm_.StartScan(FullScan(), 0);
  ASSERT_TRUE(started.ok());
  io::Prefetcher pf = MakePrefetcher(/*depth=*/3);
  pf.Pump(0);
  EXPECT_EQ(pf.ready_extents(), 3u);  // 0, 16, 32.

  // Regroup-style frontier move: the leader jumps to page 64 (e.g. after a
  // join/placement decision). The old window's reads are now stale.
  ASSERT_TRUE(ssm_.UpdateLocation(started->id, 64, 64, 1000).ok());
  pf.Pump(1000);
  EXPECT_EQ(pf.stats().dropped_stale, 3u);
  EXPECT_EQ(pf.stats().submitted, 6u);  // 3 old + 3 new (64, 80, 96).
  EXPECT_EQ(pf.ready_extents(), 3u);

  // A demand read at the OLD position must not see a stale ready extent —
  // dropped reads are gone for good (sync fallback instead).
  io::ExtentRead old_pos = pf.Acquire(0, kExtent, 1000);
  EXPECT_FALSE(old_pos.from_queue);
  // And the new window serves hits.
  io::ExtentRead new_pos = pf.Acquire(64, kExtent, 1000);
  EXPECT_TRUE(new_pos.from_queue);
  ASSERT_TRUE(new_pos.bytes.ok());
  ASSERT_TRUE(ssm_.EndScan(started->id, 1000).ok());
}

TEST_F(PrefetcherTest, ScanEndDropsWholeWindow) {
  auto started = ssm_.StartScan(FullScan(), 0);
  ASSERT_TRUE(started.ok());
  io::Prefetcher pf = MakePrefetcher(/*depth=*/4);
  pf.Pump(0);
  EXPECT_EQ(pf.ready_extents(), 4u);
  ASSERT_TRUE(ssm_.EndScan(started->id, 500).ok());
  pf.Pump(500);
  EXPECT_EQ(pf.ready_extents(), 0u);
  EXPECT_EQ(pf.stats().dropped_stale, 4u);
}

TEST_F(PrefetcherTest, QueueBoundForcesBackpressure) {
  auto started = ssm_.StartScan(FullScan(), 0);
  ASSERT_TRUE(started.ok());
  // Window wants 4 extents ahead but the ready queue only admits 2 — the
  // throttled-trailer shape, where the leader's window outruns the budget.
  io::Prefetcher pf = MakePrefetcher(/*depth=*/4, /*queue_bound=*/2);
  pf.Pump(0);
  EXPECT_EQ(pf.ready_extents(), 2u);
  EXPECT_EQ(pf.stats().submitted, 2u);
  EXPECT_GE(pf.stats().queue_full, 1u);

  // Draining the window frees budget for the next refill (refill
  // hysteresis: the pump waits for the low-water mark, then fills the
  // whole budget in one burst).
  io::ExtentRead a = pf.Acquire(0, kExtent, 0);
  EXPECT_TRUE(a.from_queue);
  io::ExtentRead b = pf.Acquire(kExtent, kExtent, 0);
  EXPECT_TRUE(b.from_queue);
  pf.Pump(100);
  EXPECT_EQ(pf.ready_extents(), 2u);
  EXPECT_EQ(pf.stats().submitted, 4u);
  ASSERT_TRUE(ssm_.EndScan(started->id, 100).ok());
}

TEST_F(PrefetcherTest, ConsumedExtentsAreNeverReissued) {
  auto started = ssm_.StartScan(FullScan(), 0);
  ASSERT_TRUE(started.ok());
  io::Prefetcher pf = MakePrefetcher(/*depth=*/4);
  pf.Pump(0);
  EXPECT_EQ(pf.stats().submitted, 4u);

  // The scan consumes three extents but reports no new position yet
  // (positions are reported at chunk start): the window still contains
  // them, and without the consumed history the pump would buy them all
  // back just to drop them at the next frontier move.
  EXPECT_TRUE(pf.Acquire(0, kExtent, 10).from_queue);
  EXPECT_TRUE(pf.Acquire(kExtent, kExtent, 20).from_queue);
  EXPECT_TRUE(pf.Acquire(2 * kExtent, kExtent, 30).from_queue);
  pf.Pump(40);
  EXPECT_EQ(pf.stats().submitted, 4u);  // Nothing re-bought.
  EXPECT_EQ(pf.stats().reissue_suppressed, 3u);
  EXPECT_EQ(pf.ready_extents(), 1u);
  ASSERT_TRUE(ssm_.EndScan(started->id, 100).ok());
}

TEST_F(PrefetcherTest, RefillHysteresisIssuesRunsNotSingles) {
  auto started = ssm_.StartScan(FullScan(), 0);
  ASSERT_TRUE(started.ok());
  io::Prefetcher pf = MakePrefetcher(/*depth=*/4);  // Low-water mark: 1.
  pf.Pump(0);
  EXPECT_EQ(pf.stats().submitted, 4u);  // Extents 0, 16, 32, 48.

  // Steady-state scan: consume an extent, report the next chunk's start,
  // pump — the slide-by-one cadence. The pump must NOT top up one extent
  // per step (that alternation is what costs a seek per extent in mixed
  // workloads); it waits for the low-water mark …
  EXPECT_TRUE(pf.Acquire(0, kExtent, 10).from_queue);
  ASSERT_TRUE(ssm_.UpdateLocation(started->id, kExtent, kExtent, 10).ok());
  pf.Pump(10);
  EXPECT_EQ(pf.stats().submitted, 4u);  // Ready 16|32|48: still draining.
  EXPECT_TRUE(pf.Acquire(kExtent, kExtent, 20).from_queue);
  ASSERT_TRUE(ssm_.UpdateLocation(started->id, 2 * kExtent, kExtent, 20).ok());
  pf.Pump(20);
  EXPECT_EQ(pf.stats().submitted, 4u);  // Ready 32|48: still draining.
  EXPECT_TRUE(pf.Acquire(2 * kExtent, kExtent, 30).from_queue);
  ASSERT_TRUE(ssm_.UpdateLocation(started->id, 3 * kExtent, kExtent, 30).ok());

  // … and then refills the whole window in one burst: extents 64, 80 and
  // 96 enter the disk queue back-to-back (a sequential run).
  pf.Pump(30);
  EXPECT_EQ(pf.stats().submitted, 7u);
  EXPECT_EQ(pf.ready_extents(), 4u);  // 48 + the new 64, 80, 96.
  ASSERT_TRUE(ssm_.EndScan(started->id, 100).ok());
}

// ---------------------------------------------------------------- engine

exec::RunConfig PushConfig(size_t frames, uint64_t depth) {
  exec::RunConfig config =
      testutil::MakeRunConfig(exec::ScanMode::kShared, frames, kExtent);
  config.io.prefetch_depth = depth;
  return config;
}

void ExpectSameOutputs(const exec::RunResult& a, const exec::RunResult& b) {
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (size_t s = 0; s < a.streams.size(); ++s) {
    ASSERT_EQ(a.streams[s].queries.size(), b.streams[s].queries.size());
    for (size_t q = 0; q < a.streams[s].queries.size(); ++q) {
      const exec::QueryOutput& ao = a.streams[s].queries[q].output;
      const exec::QueryOutput& bo = b.streams[s].queries[q].output;
      EXPECT_EQ(ao.rows_scanned, bo.rows_scanned) << "s" << s << " q" << q;
      EXPECT_EQ(ao.rows_matched, bo.rows_matched) << "s" << s << " q" << q;
      ASSERT_EQ(ao.groups.size(), bo.groups.size());
      for (size_t g = 0; g < ao.groups.size(); ++g) {
        EXPECT_EQ(ao.groups[g].key, bo.groups[g].key);
        ASSERT_EQ(ao.groups[g].values.size(), bo.groups[g].values.size());
        for (size_t v = 0; v < ao.groups[g].values.size(); ++v) {
          EXPECT_DOUBLE_EQ(ao.groups[g].values[v], bo.groups[g].values[v]);
        }
      }
    }
  }
}

TEST(PushPipelineEngineTest, PushSimMatchesPullOutputsAndHitsQueue) {
  exec::Database* db = testutil::SharedLineitemDb(kTablePages, /*seed=*/3);
  const auto streams = testutil::StaggeredQ1Q6("lineitem", sim::Millis(50));
  const size_t frames = 4 * kExtent;

  auto pull = db->Run(PushConfig(frames, /*depth=*/0), streams);
  ASSERT_TRUE(pull.ok()) << pull.status().ToString();
  EXPECT_EQ(pull->io.submitted, 0u);  // Depth 0: no pipeline at all.
  EXPECT_EQ(pull->buffer.prefetch_hits, 0u);

  auto push = db->Run(PushConfig(frames, /*depth=*/4), streams);
  ASSERT_TRUE(push.ok()) << push.status().ToString();

  ExpectSameOutputs(*pull, *push);
  // The push run actually pushed: extents were issued ahead and demand
  // misses consumed them from the ready queue.
  EXPECT_GT(push->io.submitted, 0u);
  EXPECT_GT(push->io.prefetch_hits, 0u);
  EXPECT_GT(push->buffer.prefetch_hits, 0u);
  // Every page the workload touches is still accounted once per logical
  // read; the pool identity survives the new miss path.
  EXPECT_EQ(pull->buffer.logical_reads, push->buffer.logical_reads);
  EXPECT_EQ(push->buffer.hits + push->buffer.misses,
            push->buffer.logical_reads);
}

TEST(PushPipelineEngineTest, PushSimIsBitReproducible) {
  exec::Database* db = testutil::SharedLineitemDb(kTablePages, /*seed=*/3);
  const auto streams = testutil::StaggeredQ1Q6("lineitem", sim::Millis(50));
  const exec::RunConfig config = PushConfig(4 * kExtent, /*depth=*/4);

  auto a = db->Run(config, streams);
  auto b = db->Run(config, streams);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameOutputs(*a, *b);
  EXPECT_EQ(a->makespan, b->makespan);
  EXPECT_EQ(a->disk.requests, b->disk.requests);
  EXPECT_EQ(a->disk.pages_read, b->disk.pages_read);
  EXPECT_EQ(a->disk.seeks, b->disk.seeks);
  EXPECT_EQ(a->disk.busy_micros, b->disk.busy_micros);
  EXPECT_EQ(a->buffer.hits, b->buffer.hits);
  EXPECT_EQ(a->buffer.misses, b->buffer.misses);
  EXPECT_EQ(a->buffer.prefetch_hits, b->buffer.prefetch_hits);
  EXPECT_EQ(a->io.submitted, b->io.submitted);
  EXPECT_EQ(a->io.prefetch_hits, b->io.prefetch_hits);
  EXPECT_EQ(a->io.sync_reads, b->io.sync_reads);
  EXPECT_EQ(a->io.dropped_stale, b->io.dropped_stale);
}

TEST(PushPipelineEngineTest, DiskFaultParityWithPullPath) {
  // A range fault fails whatever read first touches it. The pull path
  // fails at the demand charge; the push path parks the pump-time failure
  // and surfaces it at the demanding Acquire — the scan must see the same
  // status either way.
  auto db = testutil::MakeLineitemDb(kTablePages, /*seed=*/5);
  const auto streams = testutil::StaggeredQ1Q6("lineitem", sim::Millis(50));

  sim::DiskFaultOptions faults;
  faults.fail_range_first = 96;
  faults.fail_range_end = 97;
  db->env()->disk().SetFaults(faults);

  auto pull = db->Run(PushConfig(4 * kExtent, /*depth=*/0), streams);
  ASSERT_FALSE(pull.ok());

  db->env()->disk().SetFaults(faults);  // Re-arm (counts restart).
  auto push = db->Run(PushConfig(4 * kExtent, /*depth=*/4), streams);
  ASSERT_FALSE(push.ok());

  EXPECT_EQ(pull.status().code(), push.status().code());
  db->env()->disk().SetFaults(sim::DiskFaultOptions{});
}

TEST(PushPipelineEngineTest, MediaFaultParityWithPullPath) {
  // Post-charge media faults (PageData corruption) surface at StartBytes
  // in the push path and at InstallInto's copy in the pull path — same
  // Corruption status from Run either way.
  auto db = testutil::MakeLineitemDb(kTablePages, /*seed=*/5);
  const auto streams = testutil::StaggeredQ1Q6("lineitem", sim::Millis(50));

  db->disk_manager()->SetPageDataFaultRange(96, 97);
  auto pull = db->Run(PushConfig(4 * kExtent, /*depth=*/0), streams);
  ASSERT_FALSE(pull.ok());
  EXPECT_EQ(pull.status().code(), Status::Code::kCorruption);

  auto push = db->Run(PushConfig(4 * kExtent, /*depth=*/4), streams);
  ASSERT_FALSE(push.ok());
  EXPECT_EQ(push.status().code(), Status::Code::kCorruption);
  db->disk_manager()->ClearPageDataFaults();
}

TEST(PushPipelineEngineTest, PushEmitsIoTraceEvents) {
  exec::Database* db = testutil::SharedLineitemDb(kTablePages, /*seed=*/3);
  const auto streams = testutil::StaggeredQ1Q6("lineitem", sim::Millis(50));
  exec::RunConfig config = PushConfig(4 * kExtent, /*depth=*/4);
  config.trace.enabled = true;

  auto run = db->Run(config, streams);
  ASSERT_TRUE(run.ok());
  ASSERT_NE(run->trace, nullptr);
  uint64_t submits = 0;
  uint64_t completes = 0;
  uint64_t hits = 0;
  for (const obs::TraceEvent& e : run->trace->events()) {
    if (e.kind == obs::EventKind::kIoSubmit) ++submits;
    if (e.kind == obs::EventKind::kIoComplete) ++completes;
    if (e.kind == obs::EventKind::kIoPrefetchHit) ++hits;
  }
  EXPECT_EQ(submits, run->io.submitted);
  EXPECT_EQ(hits, run->io.prefetch_hits);
  // Every successfully charged submit gets a completion event.
  EXPECT_LE(completes, submits);
  EXPECT_GT(completes, 0u);
}

}  // namespace
}  // namespace scanshare
