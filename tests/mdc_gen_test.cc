#include "workload/mdc_gen.h"

#include <gtest/gtest.h>

#include <set>

#include "storage/page.h"
#include "workload/tpch_gen.h"

namespace scanshare::workload {
namespace {

class MdcGenTest : public ::testing::Test {
 protected:
  MdcGenTest() : dm_(&env_), catalog_(&dm_) {}

  MdcOptions SmallOptions() {
    MdcOptions o;
    o.block_pages = 4;
    o.num_regions = 2;
    o.days_per_key = 365;  // 7 keys.
    return o;
  }

  sim::Env env_;
  storage::DiskManager dm_;
  storage::Catalog catalog_;
};

TEST_F(MdcGenTest, SchemaHasClusteringColumns) {
  storage::Schema s = MdcLineitemSchema();
  EXPECT_TRUE(s.ColumnIndex("l_region").ok());
  EXPECT_TRUE(s.ColumnIndex("l_timekey").ok());
  EXPECT_TRUE(s.ColumnIndex("l_shipdate").ok());
}

TEST_F(MdcGenTest, NumTimeKeys) {
  MdcOptions o;
  o.days_per_key = 365;
  EXPECT_EQ(MdcNumTimeKeys(o), 7);
  o.days_per_key = 90;
  EXPECT_EQ(MdcNumTimeKeys(o), 29);  // ceil(2555 / 90)
  o.days_per_key = 30;
  EXPECT_EQ(MdcNumTimeKeys(o), 86);  // ceil(2555 / 30)
}

TEST_F(MdcGenTest, BadOptionsRejected) {
  MdcOptions o = SmallOptions();
  o.block_pages = 0;
  EXPECT_FALSE(GenerateMdcLineitem(&catalog_, "t", 100, 1, o).ok());
  o = SmallOptions();
  o.num_regions = 0;
  EXPECT_FALSE(GenerateMdcLineitem(&catalog_, "t", 100, 1, o).ok());
}

TEST_F(MdcGenTest, LoadsAllRowsAndAttachesIndex) {
  auto info = GenerateMdcLineitem(&catalog_, "mdc", 20000, 7, SmallOptions());
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->num_tuples, 20000u);
  auto index = catalog_.GetBlockIndex("mdc");
  ASSERT_TRUE(index.ok());
  EXPECT_GT((*index)->total_blocks(), 0u);
  EXPECT_LE((*index)->num_keys(), 7u);
  // Table is whole blocks.
  EXPECT_EQ(info->num_pages % SmallOptions().block_pages, 0u);
}

TEST_F(MdcGenTest, EveryBlockHoldsExactlyOneCell) {
  const MdcOptions o = SmallOptions();
  auto info = GenerateMdcLineitem(&catalog_, "mdc", 30000, 9, o);
  ASSERT_TRUE(info.ok());
  const storage::Schema& schema = info->schema;
  const size_t region_col = *schema.ColumnIndex("l_region");
  const size_t key_col = *schema.ColumnIndex("l_timekey");

  const uint64_t num_blocks = info->num_pages / o.block_pages;
  for (uint64_t b = 0; b < num_blocks; ++b) {
    std::set<std::pair<int64_t, int64_t>> cells_in_block;
    for (uint32_t i = 0; i < o.block_pages; ++i) {
      auto data = dm_.PageData(info->first_page + b * o.block_pages + i);
      ASSERT_TRUE(data.ok());
      storage::Page page(const_cast<uint8_t*>(*data), dm_.page_size());
      ASSERT_TRUE(page.IsValid());
      for (uint16_t s = 0; s < page.tuple_count(); ++s) {
        const uint8_t* t = page.TupleDataUnchecked(s);
        cells_in_block.insert(
            {schema.ReadInt64(t, region_col), schema.ReadInt64(t, key_col)});
      }
    }
    EXPECT_LE(cells_in_block.size(), 1u) << "block " << b << " mixes cells";
  }
}

TEST_F(MdcGenTest, IndexCoversExactlyTheRowsOfEachKey) {
  const MdcOptions o = SmallOptions();
  auto info = GenerateMdcLineitem(&catalog_, "mdc", 25000, 3, o);
  ASSERT_TRUE(info.ok());
  auto index = catalog_.GetBlockIndex("mdc");
  ASSERT_TRUE(index.ok());
  const storage::Schema& schema = info->schema;
  const size_t key_col = *schema.ColumnIndex("l_timekey");

  // Count rows per key via the index's blocks and via a full walk; they
  // must agree, and blocks listed for a key must only hold that key.
  std::map<int64_t, uint64_t> rows_via_index;
  for (int64_t key = 0; key < MdcNumTimeKeys(o); ++key) {
    for (storage::BlockId bid : (*index)->BlocksFor(key)) {
      for (uint32_t i = 0; i < o.block_pages; ++i) {
        auto data =
            dm_.PageData(info->first_page + static_cast<uint64_t>(bid) * o.block_pages + i);
        ASSERT_TRUE(data.ok());
        storage::Page page(const_cast<uint8_t*>(*data), dm_.page_size());
        for (uint16_t s = 0; s < page.tuple_count(); ++s) {
          const int64_t row_key =
              schema.ReadInt64(page.TupleDataUnchecked(s), key_col);
          ASSERT_EQ(row_key, key) << "block " << bid << " holds foreign key";
          ++rows_via_index[key];
        }
      }
    }
  }
  uint64_t total = 0;
  for (const auto& [key, n] : rows_via_index) total += n;
  EXPECT_EQ(total, info->num_tuples);
}

TEST_F(MdcGenTest, KeyRangeBlockSequenceIsNonMonotonicAcrossRegions) {
  const MdcOptions o = SmallOptions();  // 2 regions.
  auto info = GenerateMdcLineitem(&catalog_, "mdc", 30000, 5, o);
  ASSERT_TRUE(info.ok());
  auto index = catalog_.GetBlockIndex("mdc");
  ASSERT_TRUE(index.ok());
  // A single key's blocks live in two separated runs (one per region), so
  // the sequence of a one-key range must contain a backward-or-gap jump
  // larger than 1 between consecutive BIDs somewhere.
  auto sequence = (*index)->BlockSequence(3, 3);
  ASSERT_GE(sequence.size(), 2u);
  bool has_jump = false;
  for (size_t i = 1; i < sequence.size(); ++i) {
    if (sequence[i] != sequence[i - 1] + 1) has_jump = true;
  }
  EXPECT_TRUE(has_jump);
}

TEST_F(MdcGenTest, BlockSequenceOrderedByKeyThenBid) {
  const MdcOptions o = SmallOptions();
  auto info = GenerateMdcLineitem(&catalog_, "mdc", 15000, 13, o);
  ASSERT_TRUE(info.ok());
  auto index = catalog_.GetBlockIndex("mdc");
  auto seq_all = (*index)->BlockSequence(0, 6);
  EXPECT_EQ(seq_all.size(), (*index)->total_blocks());
  // Per-key subsequences are ascending.
  for (int64_t key = 0; key <= 6; ++key) {
    const auto& bids = (*index)->BlocksFor(key);
    for (size_t i = 1; i < bids.size(); ++i) {
      EXPECT_LT(bids[i - 1], bids[i]);
    }
  }
}

TEST_F(MdcGenTest, DeterministicAcrossRuns) {
  auto a = GenerateMdcLineitem(&catalog_, "a", 8000, 99, SmallOptions());
  auto b = GenerateMdcLineitem(&catalog_, "b", 8000, 99, SmallOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_pages, b->num_pages);
  for (uint64_t i = 0; i < a->num_pages; ++i) {
    auto pa = dm_.PageData(a->first_page + i);
    auto pb = dm_.PageData(b->first_page + i);
    EXPECT_EQ(std::memcmp(*pa + 24, *pb + 24, dm_.page_size() - 24), 0)
        << "page " << i;
  }
}

TEST_F(MdcGenTest, RangeBlockCountMatchesSequence) {
  auto info = GenerateMdcLineitem(&catalog_, "mdc", 12000, 17, SmallOptions());
  ASSERT_TRUE(info.ok());
  auto index = catalog_.GetBlockIndex("mdc");
  for (int64_t lo = 0; lo <= 6; lo += 2) {
    for (int64_t hi = lo; hi <= 6; hi += 2) {
      EXPECT_EQ((*index)->BlockCountInRange(lo, hi),
                (*index)->BlockSequence(lo, hi).size());
    }
  }
}

}  // namespace
}  // namespace scanshare::workload
