// Multi-table behaviour: orders-table query templates, per-table scan
// grouping (scans of different tables never share), and two-table
// workload runs under both engines.

#include <gtest/gtest.h>

#include "exec/engine.h"
#include "workload/queries.h"
#include "workload/tpch_gen.h"

namespace scanshare {
namespace {

using exec::Database;
using exec::RunConfig;
using exec::ScanMode;
using exec::StreamSpec;

class MultiTableTest : public ::testing::Test {
 protected:
  static Database* db() {
    static Database* instance = [] {
      auto* d = new Database();
      EXPECT_TRUE(workload::GenerateLineitem(d->catalog(), "lineitem",
                                             workload::LineitemRowsForPages(96),
                                             5)
                      .ok());
      EXPECT_TRUE(workload::GenerateOrders(d->catalog(), "orders", 30000, 6).ok());
      return d;
    }();
    return instance;
  }

  static RunConfig Config(ScanMode mode) {
    RunConfig c;
    c.mode = mode;
    c.buffer.num_frames = 48;
    return c;
  }
};

TEST_F(MultiTableTest, OrdersAggProducesPriorityGroups) {
  StreamSpec s;
  s.queries.push_back(workload::MakeOrdersAgg("orders"));
  auto run = db()->Run(Config(ScanMode::kBaseline), {s});
  ASSERT_TRUE(run.ok());
  const auto& out = run->streams[0].queries[0].output;
  EXPECT_EQ(out.groups.size(), 5u);  // Five order priorities.
  const double sel = static_cast<double>(out.rows_matched) /
                     static_cast<double>(out.rows_scanned);
  EXPECT_NEAR(sel, 1.0 / 7.0, 0.03);  // One-year window of seven.
}

TEST_F(MultiTableTest, OrdersScanCountsEverything) {
  StreamSpec s;
  s.queries.push_back(workload::MakeOrdersScan("orders"));
  auto run = db()->Run(Config(ScanMode::kShared), {s});
  ASSERT_TRUE(run.ok());
  const auto& out = run->streams[0].queries[0].output;
  EXPECT_DOUBLE_EQ(out.groups[0].values[0], 30000.0);
}

TEST_F(MultiTableTest, TwoTableMixShape) {
  auto mix = workload::TwoTableQueryMix("lineitem", "orders");
  ASSERT_EQ(mix.size(), 8u);
  EXPECT_EQ(mix[6].name, "QO1");
  EXPECT_EQ(mix[6].table, "orders");
  EXPECT_EQ(mix[7].name, "QO2");
  EXPECT_EQ(mix[7].table, "orders");
}

TEST_F(MultiTableTest, CrossTableScansNeverJoin) {
  // One scan per table, started simultaneously: the SSM must place the
  // orders scan at its own range begin, not at the lineitem scan.
  std::vector<StreamSpec> streams(2);
  streams[0].queries.push_back(workload::MakeQ6Like("lineitem"));
  streams[1].queries.push_back(workload::MakeOrdersScan("orders"));
  auto run = db()->Run(Config(ScanMode::kShared), streams);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->ssm.scans_started, 2u);
  EXPECT_EQ(run->ssm.scans_joined, 0u);
}

TEST_F(MultiTableTest, SameTableScansStillJoinInMixedLoad) {
  std::vector<StreamSpec> streams(3);
  streams[0].queries.push_back(workload::MakeQ6Like("lineitem"));
  streams[1].queries.push_back(workload::MakeQ6Like("lineitem"));
  streams[2].queries.push_back(workload::MakeOrdersScan("orders"));
  auto run = db()->Run(Config(ScanMode::kShared), streams);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->ssm.scans_joined, 1u);  // The second lineitem scan.
}

TEST_F(MultiTableTest, ResultsMatchAcrossModesOnTwoTables) {
  auto mix = workload::TwoTableQueryMix("lineitem", "orders");
  auto streams = workload::MakeThroughputStreams(mix, 3, 8, 17);
  auto base = db()->Run(Config(ScanMode::kBaseline), streams);
  auto shared = db()->Run(Config(ScanMode::kShared), streams);
  ASSERT_TRUE(base.ok() && shared.ok());
  for (size_t s = 0; s < streams.size(); ++s) {
    for (size_t q = 0; q < base->streams[s].queries.size(); ++q) {
      const auto& bo = base->streams[s].queries[q].output;
      const auto& so = shared->streams[s].queries[q].output;
      ASSERT_EQ(bo.groups.size(), so.groups.size());
      EXPECT_EQ(bo.rows_matched, so.rows_matched)
          << "stream " << s << " query " << q;
      for (size_t g = 0; g < bo.groups.size(); ++g) {
        for (size_t v = 0; v < bo.groups[g].values.size(); ++v) {
          EXPECT_NEAR(bo.groups[g].values[v], so.groups[g].values[v],
                      std::abs(bo.groups[g].values[v]) * 1e-9 + 1e-9);
        }
      }
    }
  }
}

TEST_F(MultiTableTest, SharingHelpsTwoTableWorkloads) {
  auto mix = workload::TwoTableQueryMix("lineitem", "orders");
  auto streams = workload::MakeThroughputStreams(mix, 4, 8, 23);
  // Paper-like regime: pool ~11 % of the two tables' footprint.
  RunConfig base_cfg = Config(ScanMode::kBaseline);
  base_cfg.buffer.num_frames = 16;
  RunConfig shared_cfg = Config(ScanMode::kShared);
  shared_cfg.buffer.num_frames = 16;
  auto base = db()->Run(base_cfg, streams);
  auto shared = db()->Run(shared_cfg, streams);
  ASSERT_TRUE(base.ok() && shared.ok());
  EXPECT_LT(shared->disk.pages_read, base->disk.pages_read);
  EXPECT_LT(shared->makespan, base->makespan);
}

TEST_F(MultiTableTest, LargePoolRegimeConservativeConfigIsSafe) {
  // Outside the paper's design regime (pool ~33 % of the data), most
  // pages stay resident across queries anyway: there is little for
  // active coordination to protect, throttle waits outweigh their
  // savings, and wrap-around placement disrupts the residual-content
  // hits a front-to-back scan would get for free. The supported
  // configuration there keeps only the passive piece (release-priority
  // hints) and must never be materially worse than the vanilla engine.
  auto mix = workload::TwoTableQueryMix("lineitem", "orders");
  auto streams = workload::MakeThroughputStreams(mix, 4, 8, 23);
  auto base = db()->Run(Config(ScanMode::kBaseline), streams);
  RunConfig conservative = Config(ScanMode::kShared);
  conservative.ssm.enable_throttling = false;
  conservative.ssm.enable_smart_placement = false;
  auto shared = db()->Run(conservative, streams);
  ASSERT_TRUE(base.ok() && shared.ok());
  EXPECT_LE(shared->makespan, base->makespan * 105 / 100);
  EXPECT_LE(shared->disk.pages_read, base->disk.pages_read * 105 / 100);
}

TEST_F(MultiTableTest, BaselinePolicyVariantsRun) {
  StreamSpec s;
  s.queries.push_back(workload::MakeQ6Like("lineitem"));
  for (auto policy : {exec::BaselinePolicy::kLru, exec::BaselinePolicy::kClock,
                      exec::BaselinePolicy::kTwoQ}) {
    RunConfig c = Config(ScanMode::kBaseline);
    c.baseline_policy = policy;
    auto run = db()->Run(c, {s, s});
    ASSERT_TRUE(run.ok());
    EXPECT_GT(run->makespan, 0u);
    // Correctness is policy-independent.
    auto table = db()->catalog()->GetTable("lineitem");
    EXPECT_EQ(run->streams[0].queries[0].output.rows_scanned,
              (*table)->num_tuples);
  }
}

}  // namespace
}  // namespace scanshare
