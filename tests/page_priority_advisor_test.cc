#include "ssm/page_priority_advisor.h"

#include <gtest/gtest.h>

namespace scanshare::ssm {
namespace {

using buffer::PagePriority;

ScanGroup Group(std::vector<ScanId> members) {
  ScanGroup g;
  g.members = members;
  g.trailer = members.front();
  g.leader = members.back();
  return g;
}

TEST(PagePriorityAdvisorTest, SingletonGetsNormal) {
  SsmOptions o;
  PagePriorityAdvisor advisor(o);
  EXPECT_EQ(advisor.Advise(1, Group({1}), 0), PagePriority::kNormal);
}

TEST(PagePriorityAdvisorTest, LeaderGetsHigh) {
  SsmOptions o;
  PagePriorityAdvisor advisor(o);
  EXPECT_EQ(advisor.Advise(2, Group({1, 2}), 100), PagePriority::kHigh);
}

TEST(PagePriorityAdvisorTest, TrailerWithClearedSuccessorGetsLow) {
  SsmOptions o;
  o.prefetch_extent_pages = 16;
  PagePriorityAdvisor advisor(o);
  // Successor is a full extent ahead: the trailer's chunk is dead.
  EXPECT_EQ(advisor.Advise(1, Group({1, 2}), 16), PagePriority::kLow);
  EXPECT_EQ(advisor.Advise(1, Group({1, 2}), 500), PagePriority::kLow);
}

TEST(PagePriorityAdvisorTest, CoLocatedTrailerGetsHigh) {
  SsmOptions o;
  o.prefetch_extent_pages = 16;
  PagePriorityAdvisor advisor(o);
  // Successor still inside the trailer's working chunk: its pages are
  // pending for the successor, so they must not be marked for eviction.
  EXPECT_EQ(advisor.Advise(1, Group({1, 2}), 0), PagePriority::kHigh);
  EXPECT_EQ(advisor.Advise(1, Group({1, 2}), 15), PagePriority::kHigh);
}

TEST(PagePriorityAdvisorTest, MiddleScanGetsHigh) {
  SsmOptions o;
  PagePriorityAdvisor advisor(o);
  // The middle scan still has a follower (the trailer) behind it.
  EXPECT_EQ(advisor.Advise(2, Group({1, 2, 3}), 100), PagePriority::kHigh);
}

TEST(PagePriorityAdvisorTest, DisabledHintsAlwaysNormal) {
  SsmOptions o;
  o.enable_priority_hints = false;
  PagePriorityAdvisor advisor(o);
  EXPECT_EQ(advisor.Advise(1, Group({1, 2}), 100), PagePriority::kNormal);
  EXPECT_EQ(advisor.Advise(2, Group({1, 2}), 100), PagePriority::kNormal);
}

}  // namespace
}  // namespace scanshare::ssm
