#include "storage/page.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace scanshare::storage {
namespace {

class PageTest : public ::testing::Test {
 protected:
  PageTest() : buf_(kDefaultPageSize, 0xAB), page_(buf_.data(), kDefaultPageSize) {}

  std::vector<uint8_t> buf_;
  Page page_;
};

TEST_F(PageTest, InitFormatsEmptyPage) {
  ASSERT_TRUE(page_.Init(7).ok());
  EXPECT_TRUE(page_.IsValid());
  EXPECT_EQ(page_.page_id(), 7u);
  EXPECT_EQ(page_.tuple_count(), 0u);
  EXPECT_GT(page_.free_space(), 32000u);
}

TEST_F(PageTest, UnformattedBufferIsInvalid) {
  EXPECT_FALSE(page_.IsValid());
}

TEST_F(PageTest, InsertAndGetRoundTrip) {
  ASSERT_TRUE(page_.Init(1).ok());
  const uint8_t data[] = {1, 2, 3, 4, 5};
  auto slot = page_.InsertTuple(data, sizeof(data));
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(*slot, 0u);
  EXPECT_EQ(page_.tuple_count(), 1u);

  auto got = page_.GetTuple(*slot);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::memcmp(*got, data, sizeof(data)), 0);
  auto len = page_.GetTupleLength(*slot);
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(*len, sizeof(data));
}

TEST_F(PageTest, SlotsAssignedSequentially) {
  ASSERT_TRUE(page_.Init(1).ok());
  const uint8_t data[8] = {0};
  for (uint16_t i = 0; i < 10; ++i) {
    auto slot = page_.InsertTuple(data, sizeof(data));
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(*slot, i);
  }
  EXPECT_EQ(page_.tuple_count(), 10u);
}

TEST_F(PageTest, TuplesPreservedAcrossInserts) {
  ASSERT_TRUE(page_.Init(1).ok());
  std::vector<std::vector<uint8_t>> tuples;
  for (uint16_t i = 0; i < 50; ++i) {
    std::vector<uint8_t> t(16, static_cast<uint8_t>(i));
    ASSERT_TRUE(page_.InsertTuple(t.data(), 16).ok());
    tuples.push_back(std::move(t));
  }
  for (uint16_t i = 0; i < 50; ++i) {
    auto got = page_.GetTuple(i);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::memcmp(*got, tuples[i].data(), 16), 0) << "slot " << i;
  }
}

TEST_F(PageTest, FillUntilExhausted) {
  ASSERT_TRUE(page_.Init(1).ok());
  const std::vector<uint8_t> t(100, 0x5A);
  int inserted = 0;
  while (true) {
    auto slot = page_.InsertTuple(t.data(), 100);
    if (!slot.ok()) {
      EXPECT_EQ(slot.status().code(), Status::Code::kResourceExhausted);
      break;
    }
    ++inserted;
  }
  // 32 KiB / (100 + 4 slot bytes) ~ 314 tuples.
  EXPECT_GT(inserted, 300);
  EXPECT_LT(inserted, 330);
  EXPECT_EQ(page_.tuple_count(), inserted);
  // Page is still fully readable after exhaustion.
  auto got = page_.GetTuple(0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::memcmp(*got, t.data(), 100), 0);
}

TEST_F(PageTest, ZeroLengthTupleRejected) {
  ASSERT_TRUE(page_.Init(1).ok());
  const uint8_t b = 0;
  auto slot = page_.InsertTuple(&b, 0);
  EXPECT_FALSE(slot.ok());
  EXPECT_EQ(slot.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(PageTest, GetOutOfRangeSlot) {
  ASSERT_TRUE(page_.Init(1).ok());
  EXPECT_EQ(page_.GetTuple(0).status().code(), Status::Code::kOutOfRange);
  const uint8_t data[4] = {0};
  ASSERT_TRUE(page_.InsertTuple(data, 4).ok());
  EXPECT_TRUE(page_.GetTuple(0).ok());
  EXPECT_EQ(page_.GetTuple(1).status().code(), Status::Code::kOutOfRange);
  EXPECT_EQ(page_.GetTupleLength(1).status().code(), Status::Code::kOutOfRange);
}

TEST_F(PageTest, FreeSpaceDecreasesByTuplePlusSlot) {
  ASSERT_TRUE(page_.Init(1).ok());
  const uint32_t before = page_.free_space();
  const uint8_t data[10] = {0};
  ASSERT_TRUE(page_.InsertTuple(data, 10).ok());
  EXPECT_EQ(page_.free_space(), before - 10 - 4);  // 4-byte slot entry.
}

TEST_F(PageTest, SetPageIdRewritesOnlyId) {
  ASSERT_TRUE(page_.Init(3).ok());
  const uint8_t data[4] = {9, 9, 9, 9};
  ASSERT_TRUE(page_.InsertTuple(data, 4).ok());
  page_.SetPageId(42);
  EXPECT_EQ(page_.page_id(), 42u);
  EXPECT_TRUE(page_.IsValid());
  EXPECT_EQ(page_.tuple_count(), 1u);
  auto got = page_.GetTuple(0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::memcmp(*got, data, 4), 0);
}

TEST(PageSizeTest, TinyPageRejected) {
  std::vector<uint8_t> buf(8, 0);
  Page page(buf.data(), 8);
  EXPECT_EQ(page.Init(0).code(), Status::Code::kInvalidArgument);
}

TEST(PageSizeTest, OversizePageRejected) {
  std::vector<uint8_t> buf(128 * 1024, 0);
  Page page(buf.data(), 128 * 1024);  // 16-bit offsets cannot address this.
  EXPECT_EQ(page.Init(0).code(), Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace scanshare::storage
