// The determinism contract of the parallel run driver: a simulation run
// executed on a worker thread, against a private database rebuilt from
// the same seed, is bit-identical to the same run executed sequentially
// — every counter, every virtual timestamp, and every aggregate double
// matching by bit pattern (metrics::BitIdentical). This is what makes
// `--jobs=N` purely a wall-clock optimization: N must never appear in
// the output.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "exec/engine.h"
#include "exec/parallel_scan.h"
#include "metrics/report.h"
#include "testutil.h"
#include "workload/queries.h"

namespace scanshare {
namespace {

constexpr uint64_t kPages = 96;
constexpr uint64_t kSeed = 4242;

std::unique_ptr<exec::Database> FreshDb() {
  return testutil::MakeLineitemDb(kPages, kSeed);
}

struct Job {
  exec::RunConfig run;
  std::vector<exec::StreamSpec> streams;
};

// A small grid spanning both engines, both kernels, staggered and
// throughput stream shapes, and a fairness-cap variant.
std::vector<Job> MakeJobs() {
  std::vector<Job> jobs;

  exec::StreamSpec q6;
  q6.queries.push_back(workload::MakeQ6Like("lineitem"));
  exec::StreamSpec q1;
  q1.queries.push_back(workload::MakeQ1Like("lineitem"));

  {
    Job j;
    j.run.mode = exec::ScanMode::kBaseline;
    j.run.buffer.num_frames = 24;
    j.streams = {q6, q6, q1};
    jobs.push_back(j);
  }
  {
    Job j;
    j.run.mode = exec::ScanMode::kShared;
    j.run.buffer.num_frames = 24;
    j.streams = {q6, q6, q1};
    jobs.push_back(j);
  }
  {
    Job j;
    j.run.mode = exec::ScanMode::kShared;
    j.run.buffer.num_frames = 16;
    j.run.ssm.fairness_cap = 0.5;
    j.run.kernel = exec::KernelMode::kScalar;
    j.streams = {q1, q6};
    jobs.push_back(j);
  }
  {
    Job j;
    j.run.mode = exec::ScanMode::kShared;
    j.run.buffer.num_frames = 32;
    j.run.record_traces = true;
    exec::StreamSpec staggered = q6;
    staggered.start_delay = 20000;
    j.streams = {q6, staggered};
    jobs.push_back(j);
  }
  {
    Job j;
    j.run.mode = exec::ScanMode::kShared;
    j.run.buffer.num_frames = 24;
    j.streams = workload::MakeThroughputStreams(
        workload::DefaultQueryMix("lineitem"), 2, 3, kSeed);
    jobs.push_back(j);
  }
  {
    // Event tracing on: the trace rides in RunResult and BitIdentical
    // compares it event-for-event, so a worker thread must reproduce the
    // sequential run's trace exactly (virtual-clock stamps only).
    Job j;
    j.run.mode = exec::ScanMode::kShared;
    j.run.buffer.num_frames = 24;
    j.run.trace.enabled = true;
    j.streams = {q6, q6, q1};
    jobs.push_back(j);
  }
  return jobs;
}

TEST(ParallelDeterminismTest, WorkerThreadRunsBitIdenticalToSequential) {
  const std::vector<Job> jobs = MakeJobs();

  // Sequential reference: one database, jobs in order — exactly what the
  // bench driver does at --jobs=1.
  std::vector<exec::RunResult> sequential(jobs.size());
  {
    auto db = FreshDb();
    for (size_t i = 0; i < jobs.size(); ++i) {
      auto r = db->Run(jobs[i].run, jobs[i].streams);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      sequential[i] = *std::move(r);
    }
  }

  // Parallel: 8 workers, each job on its own private database, results
  // merged into pre-sized slots in index order.
  std::vector<exec::RunResult> parallel(jobs.size());
  testutil::ConcurrencyWitness witness;
  {
    ThreadPool pool(8);
    pool.ParallelFor(jobs.size(), [&](size_t i) {
      witness.Enter();
      auto db = FreshDb();
      auto r = db->Run(jobs[i].run, jobs[i].streams);
      witness.Exit();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      parallel[i] = *std::move(r);
    });
  }
  // On a single-core host the pool may never overlap two jobs; that makes
  // this a sequential-vs-sequential comparison, which must be said loudly
  // rather than silently passing as a concurrency test.
  EXPECT_TRUE(testutil::OverlapObservedOrSingleCoreNoted(
      "parallel_determinism_test", witness.max_concurrent()));

  for (size_t i = 0; i < jobs.size(); ++i) {
    std::string diff;
    EXPECT_TRUE(metrics::BitIdentical(sequential[i], parallel[i], &diff))
        << "job " << i << " differs at " << diff;
  }
}

// Re-running the same job on the same database must also be bit-stable
// (Database::Run resets all mutable state); this is the property the
// parallel driver builds on, checked in isolation so a violation points
// at the engine rather than the pool.
TEST(ParallelDeterminismTest, RepeatedRunsOnOneDatabaseBitIdentical) {
  auto db = FreshDb();
  exec::StreamSpec q6;
  q6.queries.push_back(workload::MakeQ6Like("lineitem"));
  exec::RunConfig c;
  c.mode = exec::ScanMode::kShared;
  c.buffer.num_frames = 24;

  auto first = db->Run(c, {q6, q6});
  ASSERT_TRUE(first.ok());
  auto second = db->Run(c, {q6, q6});
  ASSERT_TRUE(second.ok());

  std::string diff;
  EXPECT_TRUE(metrics::BitIdentical(*first, *second, &diff))
      << "differs at " << diff;
}

// Intra-query determinism: the morsel-parallel scan must produce
// bit-identical aggregates (output rows, group keys, every double by bit
// pattern) for jobs=1 and jobs=8 on the same database — regardless of
// which worker claims which morsel or where the SSM rotates the start
// position. Buffer/disk counters are NOT part of this contract (eviction
// order depends on scheduling); QueryOutput and the row counters are.
TEST(ParallelDeterminismTest, IntraQueryJobsBitIdenticalAggregates) {
  auto db = FreshDb();
  exec::RunConfig config;
  config.mode = exec::ScanMode::kShared;
  config.buffer.num_frames = 24;

  const std::vector<exec::QuerySpec> queries = {
      workload::MakeQ1Like("lineitem"), workload::MakeQ6Like("lineitem")};
  for (const exec::QuerySpec& query : queries) {
    exec::ParallelScanOptions one;
    one.jobs = 1;
    auto a = exec::RunQueryParallel(db.get(), config, query, one);
    ASSERT_TRUE(a.ok()) << query.name << ": " << a.status().ToString();

    exec::ParallelScanOptions eight;
    eight.jobs = 8;
    auto b = exec::RunQueryParallel(db.get(), config, query, eight);
    ASSERT_TRUE(b.ok()) << query.name << ": " << b.status().ToString();

    std::string diff;
    EXPECT_TRUE(metrics::BitIdentical(a->output, b->output, &diff))
        << query.name << " jobs=1 vs jobs=8 differs at " << diff;
    EXPECT_EQ(a->metrics.pages_scanned, b->metrics.pages_scanned)
        << query.name;
    EXPECT_EQ(a->metrics.tuples_scanned, b->metrics.tuples_scanned)
        << query.name;
    EXPECT_GT(a->output.rows_scanned, 0u) << query.name;
  }
}

// The parallel path must agree with the sequential simulation engine on
// what the query *computes*: identical row/group counters and matching
// aggregate values. Values are compared with a tight relative bound, not
// BitIdentical: the morsel merge uses a canonical per-morsel reduction
// tree while the engine folds one accumulator across the whole scan, and
// floating-point addition is not associative — bit-identity is a contract
// *within* the parallel path (jobs=1 vs jobs=N), not across engines.
TEST(ParallelDeterminismTest, IntraQueryAgreesWithSequentialEngine) {
  auto db = FreshDb();
  exec::RunConfig config;
  config.mode = exec::ScanMode::kShared;
  config.buffer.num_frames = 24;

  for (const exec::QuerySpec& query :
       {workload::MakeQ1Like("lineitem"), workload::MakeQ6Like("lineitem")}) {
    exec::StreamSpec stream;
    stream.queries.push_back(query);
    auto engine_run = db->Run(config, {stream});
    ASSERT_TRUE(engine_run.ok()) << engine_run.status().ToString();
    ASSERT_EQ(engine_run->streams.size(), 1u);
    ASSERT_EQ(engine_run->streams[0].queries.size(), 1u);
    const exec::QueryOutput& expect =
        engine_run->streams[0].queries[0].output;

    exec::ParallelScanOptions options;
    options.jobs = 4;
    auto got = exec::RunQueryParallel(db.get(), config, query, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();

    EXPECT_EQ(got->output.rows_scanned, expect.rows_scanned) << query.name;
    EXPECT_EQ(got->output.rows_matched, expect.rows_matched) << query.name;
    ASSERT_EQ(got->output.groups.size(), expect.groups.size()) << query.name;
    for (size_t g = 0; g < expect.groups.size(); ++g) {
      EXPECT_EQ(got->output.groups[g].key, expect.groups[g].key);
      EXPECT_EQ(got->output.groups[g].rows, expect.groups[g].rows);
      ASSERT_EQ(got->output.groups[g].values.size(),
                expect.groups[g].values.size());
      for (size_t v = 0; v < expect.groups[g].values.size(); ++v) {
        // Reassociating ~1e5 additions moves the result by a few ULPs per
        // accumulation level; a relative 1e-12 bound is ~1000x that and
        // still catches any real aggregation bug.
        const double want = expect.groups[g].values[v];
        EXPECT_NEAR(got->output.groups[g].values[v], want,
                    1e-12 * std::max(1.0, std::abs(want)))
            << query.name << " group " << g << " value " << v;
      }
    }
  }
}

}  // namespace
}  // namespace scanshare
