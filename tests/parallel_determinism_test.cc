// The determinism contract of the parallel run driver: a simulation run
// executed on a worker thread, against a private database rebuilt from
// the same seed, is bit-identical to the same run executed sequentially
// — every counter, every virtual timestamp, and every aggregate double
// matching by bit pattern (metrics::BitIdentical). This is what makes
// `--jobs=N` purely a wall-clock optimization: N must never appear in
// the output.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "exec/engine.h"
#include "metrics/report.h"
#include "testutil.h"
#include "workload/queries.h"

namespace scanshare {
namespace {

constexpr uint64_t kPages = 96;
constexpr uint64_t kSeed = 4242;

std::unique_ptr<exec::Database> FreshDb() {
  return testutil::MakeLineitemDb(kPages, kSeed);
}

struct Job {
  exec::RunConfig run;
  std::vector<exec::StreamSpec> streams;
};

// A small grid spanning both engines, both kernels, staggered and
// throughput stream shapes, and a fairness-cap variant.
std::vector<Job> MakeJobs() {
  std::vector<Job> jobs;

  exec::StreamSpec q6;
  q6.queries.push_back(workload::MakeQ6Like("lineitem"));
  exec::StreamSpec q1;
  q1.queries.push_back(workload::MakeQ1Like("lineitem"));

  {
    Job j;
    j.run.mode = exec::ScanMode::kBaseline;
    j.run.buffer.num_frames = 24;
    j.streams = {q6, q6, q1};
    jobs.push_back(j);
  }
  {
    Job j;
    j.run.mode = exec::ScanMode::kShared;
    j.run.buffer.num_frames = 24;
    j.streams = {q6, q6, q1};
    jobs.push_back(j);
  }
  {
    Job j;
    j.run.mode = exec::ScanMode::kShared;
    j.run.buffer.num_frames = 16;
    j.run.ssm.fairness_cap = 0.5;
    j.run.kernel = exec::KernelMode::kScalar;
    j.streams = {q1, q6};
    jobs.push_back(j);
  }
  {
    Job j;
    j.run.mode = exec::ScanMode::kShared;
    j.run.buffer.num_frames = 32;
    j.run.record_traces = true;
    exec::StreamSpec staggered = q6;
    staggered.start_delay = 20000;
    j.streams = {q6, staggered};
    jobs.push_back(j);
  }
  {
    Job j;
    j.run.mode = exec::ScanMode::kShared;
    j.run.buffer.num_frames = 24;
    j.streams = workload::MakeThroughputStreams(
        workload::DefaultQueryMix("lineitem"), 2, 3, kSeed);
    jobs.push_back(j);
  }
  {
    // Event tracing on: the trace rides in RunResult and BitIdentical
    // compares it event-for-event, so a worker thread must reproduce the
    // sequential run's trace exactly (virtual-clock stamps only).
    Job j;
    j.run.mode = exec::ScanMode::kShared;
    j.run.buffer.num_frames = 24;
    j.run.trace.enabled = true;
    j.streams = {q6, q6, q1};
    jobs.push_back(j);
  }
  return jobs;
}

TEST(ParallelDeterminismTest, WorkerThreadRunsBitIdenticalToSequential) {
  const std::vector<Job> jobs = MakeJobs();

  // Sequential reference: one database, jobs in order — exactly what the
  // bench driver does at --jobs=1.
  std::vector<exec::RunResult> sequential(jobs.size());
  {
    auto db = FreshDb();
    for (size_t i = 0; i < jobs.size(); ++i) {
      auto r = db->Run(jobs[i].run, jobs[i].streams);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      sequential[i] = *std::move(r);
    }
  }

  // Parallel: 8 workers, each job on its own private database, results
  // merged into pre-sized slots in index order.
  std::vector<exec::RunResult> parallel(jobs.size());
  testutil::ConcurrencyWitness witness;
  {
    ThreadPool pool(8);
    pool.ParallelFor(jobs.size(), [&](size_t i) {
      witness.Enter();
      auto db = FreshDb();
      auto r = db->Run(jobs[i].run, jobs[i].streams);
      witness.Exit();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      parallel[i] = *std::move(r);
    });
  }
  // On a single-core host the pool may never overlap two jobs; that makes
  // this a sequential-vs-sequential comparison, which must be said loudly
  // rather than silently passing as a concurrency test.
  EXPECT_TRUE(testutil::OverlapObservedOrSingleCoreNoted(
      "parallel_determinism_test", witness.max_concurrent()));

  for (size_t i = 0; i < jobs.size(); ++i) {
    std::string diff;
    EXPECT_TRUE(metrics::BitIdentical(sequential[i], parallel[i], &diff))
        << "job " << i << " differs at " << diff;
  }
}

// Re-running the same job on the same database must also be bit-stable
// (Database::Run resets all mutable state); this is the property the
// parallel driver builds on, checked in isolation so a violation points
// at the engine rather than the pool.
TEST(ParallelDeterminismTest, RepeatedRunsOnOneDatabaseBitIdentical) {
  auto db = FreshDb();
  exec::StreamSpec q6;
  q6.queries.push_back(workload::MakeQ6Like("lineitem"));
  exec::RunConfig c;
  c.mode = exec::ScanMode::kShared;
  c.buffer.num_frames = 24;

  auto first = db->Run(c, {q6, q6});
  ASSERT_TRUE(first.ok());
  auto second = db->Run(c, {q6, q6});
  ASSERT_TRUE(second.ok());

  std::string diff;
  EXPECT_TRUE(metrics::BitIdentical(*first, *second, &diff))
      << "differs at " << diff;
}

}  // namespace
}  // namespace scanshare
