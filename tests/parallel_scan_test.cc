// Copyright (c) scanshare authors. Licensed under the Apache License 2.0.
//
// RunQueryParallel unit coverage: morsel sweep completeness (every page in
// range visited exactly once), SSM registration/advice on the parallel
// path, baseline mode bypassing the SSM, and input validation. The
// bit-identity contract itself lives in parallel_determinism_test.

#include "exec/parallel_scan.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/thread_pool.h"
#include "exec/engine.h"
#include "testutil.h"
#include "workload/queries.h"

namespace scanshare::exec {
namespace {

constexpr uint64_t kPages = 96;
constexpr uint64_t kSeed = 4242;

class ParallelScanTest : public ::testing::Test {
 protected:
  ParallelScanTest() : db_(testutil::MakeLineitemDb(kPages, kSeed)) {
    config_.mode = ScanMode::kShared;
    config_.buffer.num_frames = 24;
  }

  std::unique_ptr<Database> db_;
  RunConfig config_;
};

TEST_F(ParallelScanTest, MorselSweepCoversEveryPageOnce) {
  ParallelScanOptions options;
  options.jobs = 4;
  auto r = RunQueryParallel(db_.get(), config_,
                            workload::MakeQ6Like("lineitem"), options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // A full-table scan visits each page exactly once, regardless of how
  // morsels were distributed over workers.
  EXPECT_EQ(r->metrics.pages_scanned, kPages);
  EXPECT_GT(r->metrics.tuples_scanned, 0u);
  EXPECT_EQ(r->output.rows_scanned, r->metrics.tuples_scanned);
  EXPECT_EQ(r->jobs, 4u);
  EXPECT_GT(r->morsels, 1u);
}

TEST_F(ParallelScanTest, PartialRangeScanStaysInRange) {
  ParallelScanOptions options;
  options.jobs = 3;
  auto r = RunQueryParallel(
      db_.get(), config_,
      workload::MakeRangeScan("lineitem", 0.25, 0.75, "half"), options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // [0.25, 0.75) of 96 pages = [24, 72), snapped outward to the default
  // 16-page prefetch-extent boundaries by ResolveScanRange: [16, 80).
  EXPECT_EQ(r->metrics.pages_scanned, 64u);
  EXPECT_LT(r->metrics.pages_scanned, kPages);
}

TEST_F(ParallelScanTest, SharedModeRegistersWithSsm) {
  ParallelScanOptions options;
  options.jobs = 2;
  auto r = RunQueryParallel(db_.get(), config_,
                            workload::MakeQ1Like("lineitem"), options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->ssm.scans_started, 1u);
  EXPECT_EQ(r->ssm.scans_ended, 1u);
  EXPECT_GT(r->ssm.updates, 0u);
}

TEST_F(ParallelScanTest, BaselineModeBypassesSsm) {
  RunConfig baseline = config_;
  baseline.mode = ScanMode::kBaseline;
  ParallelScanOptions options;
  options.jobs = 2;
  auto r = RunQueryParallel(db_.get(), baseline,
                            workload::MakeQ6Like("lineitem"), options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->ssm.scans_started, 0u);
  EXPECT_EQ(r->metrics.pages_scanned, kPages);
  EXPECT_EQ(r->metrics.throttle_wait, 0u);
}

TEST_F(ParallelScanTest, JobsZeroResolvesToHardwareConcurrency) {
  ParallelScanOptions options;
  options.jobs = 0;
  auto r = RunQueryParallel(db_.get(), config_,
                            workload::MakeQ6Like("lineitem"), options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->jobs, ThreadPool::HardwareConcurrency());
  EXPECT_GE(r->jobs, 1u);
}

TEST_F(ParallelScanTest, WiderMorselsReduceMorselCount) {
  ParallelScanOptions narrow;
  narrow.jobs = 2;
  narrow.morsel_extents = 1;
  auto a = RunQueryParallel(db_.get(), config_,
                            workload::MakeQ6Like("lineitem"), narrow);
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  ParallelScanOptions wide = narrow;
  wide.morsel_extents = 4;
  auto b = RunQueryParallel(db_.get(), config_,
                            workload::MakeQ6Like("lineitem"), wide);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  EXPECT_LT(b->morsels, a->morsels);
  EXPECT_EQ(a->metrics.pages_scanned, b->metrics.pages_scanned);
}

TEST_F(ParallelScanTest, RejectsIndexScanQueries) {
  QuerySpec q = workload::MakeQ6Like("lineitem");
  q.access = AccessPath::kIndexScan;
  ParallelScanOptions options;
  auto r = RunQueryParallel(db_.get(), config_, q, options);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotSupported);
}

}  // namespace
}  // namespace scanshare::exec
