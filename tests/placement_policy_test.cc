#include "ssm/placement_policy.h"

#include <gtest/gtest.h>

namespace scanshare::ssm {
namespace {

SsmOptions DefaultOptions() {
  SsmOptions o;
  o.prefetch_extent_pages = 16;
  return o;
}

ScanDescriptor FullTableDesc(sim::PageId first = 0, sim::PageId end = 1024) {
  ScanDescriptor d;
  d.table_id = 1;
  d.table_first = first;
  d.table_end = end;
  d.range_first = first;
  d.range_end = end;
  d.estimated_pages = end - first;
  d.estimated_duration = sim::Seconds(10);
  return d;
}

ScanState ActiveScan(ScanId id, sim::PageId pos, double pps,
                     uint64_t remaining) {
  ScanState s;
  s.id = id;
  s.position = pos;
  s.speed_pps = pps;
  s.desc = FullTableDesc();
  // A mature scan: its covered region no longer fits the pool, so the
  // "young candidate" refinement does not fire and placement targets the
  // candidate's current position. Young-candidate behaviour is tested
  // separately below.
  s.start_page = 0;
  s.pages_processed = 4096;
  s.desc.estimated_pages = 4096 + remaining;  // remaining_pages() == remaining.
  return s;
}

TEST(PlacementPolicyTest, NoScansNoHistoryStartsAtRangeBegin) {
  SsmOptions o = DefaultOptions();
  PlacementPolicy p(o);
  ScanCircle c(0, 1024);
  auto placement = p.Choose(FullTableDesc(), 100.0, {}, 0, std::nullopt, c);
  EXPECT_EQ(placement.start_page, 0u);
  EXPECT_EQ(placement.joined_scan, kInvalidScanId);
}

TEST(PlacementPolicyTest, JoinsOnlyOngoingScan) {
  SsmOptions o = DefaultOptions();
  PlacementPolicy p(o);
  ScanCircle c(0, 1024);
  ScanState a = ActiveScan(7, 512, 100.0, 512);
  auto placement = p.Choose(FullTableDesc(), 100.0, {&a}, 1, std::nullopt, c);
  EXPECT_EQ(placement.joined_scan, 7u);
  EXPECT_EQ(placement.start_page, 512u);  // Already extent-aligned.
}

TEST(PlacementPolicyTest, StartPageAlignedDownToExtent) {
  SsmOptions o = DefaultOptions();
  PlacementPolicy p(o);
  ScanCircle c(0, 1024);
  ScanState a = ActiveScan(7, 519, 100.0, 500);
  auto placement = p.Choose(FullTableDesc(), 100.0, {&a}, 1, std::nullopt, c);
  EXPECT_EQ(placement.start_page, 512u);  // 519 aligned down to 16-grid.
}

TEST(PlacementPolicyTest, ZeroExtentAlignsToSinglePages) {
  // prefetch_extent_pages == 0 must mean a one-page alignment quantum
  // (EffectiveExtent), not a division by zero or a surprise grid.
  SsmOptions o = DefaultOptions();
  o.prefetch_extent_pages = 0;
  PlacementPolicy p(o);
  ScanCircle c(0, 1024);
  ScanState a = ActiveScan(7, 519, 100.0, 500);
  auto placement = p.Choose(FullTableDesc(), 100.0, {&a}, 1, std::nullopt, c);
  EXPECT_EQ(placement.joined_scan, 7u);
  EXPECT_EQ(placement.start_page, 519u);  // Exact position: one-page grid.
}

TEST(PlacementPolicyTest, PrefersSpeedMatchedScan) {
  SsmOptions o = DefaultOptions();
  PlacementPolicy p(o);
  ScanCircle c(0, 1024);
  // Both have plenty of range left; the speed-matched one wins (the
  // paper's Figure-7 "scan C beats scan A" case).
  ScanState fast = ActiveScan(1, 256, 500.0, 700);
  ScanState matched = ActiveScan(2, 512, 100.0, 450);
  auto placement =
      p.Choose(FullTableDesc(), 100.0, {&fast, &matched}, 2, std::nullopt, c);
  EXPECT_EQ(placement.joined_scan, 2u);
}

TEST(PlacementPolicyTest, PrefersScanWithMoreRemainingRange) {
  SsmOptions o = DefaultOptions();
  PlacementPolicy p(o);
  ScanCircle c(0, 1024);
  // Same speeds; the one about to finish shares almost nothing (the
  // paper's Figure-7 "scan B has little remaining overlap" case).
  ScanState nearly_done = ActiveScan(1, 1000, 100.0, 16);
  ScanState fresh = ActiveScan(2, 128, 100.0, 900);
  auto placement =
      p.Choose(FullTableDesc(), 100.0, {&nearly_done, &fresh}, 2, std::nullopt, c);
  EXPECT_EQ(placement.joined_scan, 2u);
}

TEST(PlacementPolicyTest, IgnoresScansOutsideNewRange) {
  SsmOptions o = DefaultOptions();
  PlacementPolicy p(o);
  ScanCircle c(0, 1024);
  ScanDescriptor d = FullTableDesc();
  d.range_first = 512;  // New scan only covers the second half.
  d.range_end = 1024;
  d.estimated_pages = 512;
  ScanState outside = ActiveScan(1, 100, 100.0, 900);
  auto placement = p.Choose(d, 100.0, {&outside}, 1, std::nullopt, c);
  EXPECT_EQ(placement.joined_scan, kInvalidScanId);
  EXPECT_EQ(placement.start_page, 512u);
}

TEST(PlacementPolicyTest, UsesLastFinishedPositionWhenIdle) {
  SsmOptions o = DefaultOptions();
  PlacementPolicy p(o);
  ScanCircle c(0, 1024);
  auto placement = p.Choose(FullTableDesc(), 100.0, {}, 0, sim::PageId{768}, c);
  EXPECT_EQ(placement.start_page, 768u);
  EXPECT_EQ(placement.joined_scan, kInvalidScanId);
}

TEST(PlacementPolicyTest, LastFinishedOutsideRangeIgnored) {
  SsmOptions o = DefaultOptions();
  PlacementPolicy p(o);
  ScanCircle c(0, 1024);
  ScanDescriptor d = FullTableDesc();
  d.range_first = 0;
  d.range_end = 512;
  d.estimated_pages = 512;
  auto placement = p.Choose(d, 100.0, {}, 0, sim::PageId{768}, c);
  EXPECT_EQ(placement.start_page, 0u);
}

TEST(PlacementPolicyTest, SmartPlacementDisabled) {
  SsmOptions o = DefaultOptions();
  o.enable_smart_placement = false;
  PlacementPolicy p(o);
  ScanCircle c(0, 1024);
  ScanState a = ActiveScan(7, 512, 100.0, 512);
  auto placement = p.Choose(FullTableDesc(), 100.0, {&a}, 1, sim::PageId{256}, c);
  EXPECT_EQ(placement.start_page, 0u);
  EXPECT_EQ(placement.joined_scan, kInvalidScanId);
}

TEST(PlacementPolicyTest, SharingScoreMonotonicInRemaining) {
  SsmOptions o = DefaultOptions();
  PlacementPolicy p(o);
  ScanState little = ActiveScan(1, 0, 100.0, 50);
  ScanState lots = ActiveScan(2, 0, 100.0, 800);
  EXPECT_LT(p.SharingScore(little, 100.0, 1024),
            p.SharingScore(lots, 100.0, 1024));
}

TEST(PlacementPolicyTest, SharingScoreFavoursCloserSpeeds) {
  SsmOptions o = DefaultOptions();
  PlacementPolicy p(o);
  ScanState cand = ActiveScan(1, 0, 100.0, 100000);
  // Candidate has huge remaining work: drift horizon dominates the score.
  EXPECT_GT(p.SharingScore(cand, 110.0, 1 << 20),
            p.SharingScore(cand, 400.0, 1 << 20));
}

TEST(PlacementPolicyTest, YoungCandidateJoinedAtItsStart) {
  SsmOptions o = DefaultOptions();
  o.bufferpool_pages = 256;
  PlacementPolicy p(o);
  ScanCircle c(0, 1024);
  ScanState young = ActiveScan(7, 192, 100.0, 800);
  young.start_page = 64;
  young.pages_processed = 128;  // 128 * 1 <= 256: everything resident.
  auto placement = p.Choose(FullTableDesc(), 100.0, {&young}, 1, std::nullopt, c);
  EXPECT_EQ(placement.joined_scan, 7u);
  // Placed at the candidate's start: the catch-up rides buffered pages
  // and the wrap tail shrinks by the candidate's progress.
  EXPECT_EQ(placement.start_page, 64u);
}

TEST(PlacementPolicyTest, YoungRefinementScalesWithActiveScanCount) {
  SsmOptions o = DefaultOptions();
  o.bufferpool_pages = 256;
  PlacementPolicy p(o);
  ScanCircle c(0, 1024);
  // Same candidate progress, but three active scans churn the pool three
  // times as fast: 128 * 3 > 256, so the refinement must not fire.
  ScanState cand = ActiveScan(1, 192, 100.0, 800);
  cand.start_page = 64;
  cand.pages_processed = 128;
  ScanState other1 = ActiveScan(2, 700, 100.0, 300);
  ScanState other2 = ActiveScan(3, 900, 100.0, 100);
  auto placement =
      p.Choose(FullTableDesc(), 100.0, {&cand, &other1, &other2}, 3, std::nullopt, c);
  EXPECT_EQ(placement.joined_scan, 1u);
  EXPECT_EQ(placement.start_page, 192u);  // Current position, not start.
}

TEST(PlacementPolicyTest, EqualScoresBreakTiesByScanId) {
  SsmOptions o = DefaultOptions();
  PlacementPolicy p(o);
  ScanCircle c(0, 1024);
  ScanState a = ActiveScan(3, 256, 100.0, 400);
  ScanState b = ActiveScan(9, 512, 100.0, 400);
  auto placement = p.Choose(FullTableDesc(), 100.0, {&b, &a}, 2, std::nullopt, c);
  EXPECT_EQ(placement.joined_scan, 3u);
}

}  // namespace
}  // namespace scanshare::ssm
