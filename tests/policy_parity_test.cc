// Copyright (c) scanshare authors. Licensed under the Apache License 2.0.
//
// The policy seam's compatibility contract (DESIGN.md §13): the default
// PolicyKind must be bit-identical to the pre-seam engine — same RunResult
// counters, same aggregate outputs, same lifecycle trace — whether the
// policy objects are defaulted or constructed explicitly. The rival
// policies (ABM, PBM) may differ in every performance counter but must
// preserve query ANSWERS exactly: policies steer caching and scheduling,
// never results.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "buffer/page_policy.h"
#include "buffer/policies/scan_position_board.h"
#include "metrics/report.h"
#include "obs/export.h"
#include "ssm/policies/group_throttle_policy.h"
#include "ssm/scan_sharing_manager.h"
#include "testutil.h"

namespace scanshare {
namespace {

constexpr uint64_t kPages = 400;
constexpr uint64_t kSeed = 42;

exec::RunConfig TracedSharedConfig() {
  exec::RunConfig config =
      testutil::MakeRunConfig(exec::ScanMode::kShared, /*frames=*/64);
  config.trace.enabled = true;
  return config;
}

TEST(PolicyParityTest, ExplicitDefaultKindIsBitIdenticalToImplicit) {
  exec::Database* db = testutil::SharedLineitemDb(kPages, kSeed);
  const auto streams = testutil::StaggeredQ1Q6("lineitem", sim::Seconds(2));

  const exec::RunConfig implicit_config = TracedSharedConfig();
  auto implicit_run = db->Run(implicit_config, streams);
  ASSERT_TRUE(implicit_run.ok());

  exec::RunConfig explicit_config = TracedSharedConfig();
  explicit_config.policy = PolicyKind::kGroupThrottle;
  auto explicit_run = db->Run(explicit_config, streams);
  ASSERT_TRUE(explicit_run.ok());

  std::string diff;
  EXPECT_TRUE(metrics::BitIdentical(*implicit_run, *explicit_run, &diff))
      << diff;
  ASSERT_NE(implicit_run->trace, nullptr);
  ASSERT_NE(explicit_run->trace, nullptr);
  EXPECT_EQ(obs::StructuralSummary(implicit_run->trace->events()),
            obs::StructuralSummary(explicit_run->trace->events()));
}

TEST(PolicyParityTest, ExplicitPolicyObjectsMatchDefaultConstructedManager) {
  // Decision-level parity: a manager handed explicitly constructed default
  // policy objects must answer every StartScan/UpdateLocation identically
  // to the default-constructed manager, over a script that exercises
  // placement, grouping, throttling, and release hints.
  ssm::SsmOptions options;
  options.bufferpool_pages = 128;
  options.prefetch_extent_pages = 16;
  ssm::ScanSharingManager implicit(options);
  ssm::ScanSharingManager explicit_mgr(
      options, std::make_shared<ssm::GroupThrottlePolicy>(options),
      buffer::MakePagePolicy(PolicyKind::kGroupThrottle, nullptr));

  ssm::ScanDescriptor desc;
  desc.table_id = 1;
  desc.table_first = 0;
  desc.table_end = 256;
  desc.range_first = 0;
  desc.range_end = 256;
  desc.estimated_pages = 256;
  desc.estimated_duration = sim::Seconds(4);

  auto a1 = implicit.StartScan(desc, 0);
  auto b1 = explicit_mgr.StartScan(desc, 0);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(b1.ok());
  EXPECT_EQ(a1->start_page, b1->start_page);
  EXPECT_EQ(a1->joined_scan, b1->joined_scan);

  // Let the first scan make progress, then admit a second: placement must
  // pick the same join point in both managers.
  sim::Micros now = sim::Seconds(1);
  ASSERT_TRUE(implicit.UpdateLocation(a1->id, 64, 64, now).ok());
  ASSERT_TRUE(explicit_mgr.UpdateLocation(b1->id, 64, 64, now).ok());
  auto a2 = implicit.StartScan(desc, now);
  auto b2 = explicit_mgr.StartScan(desc, now);
  ASSERT_TRUE(a2.ok());
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(a2->start_page, b2->start_page);
  EXPECT_EQ(a2->joined_scan, b2->joined_scan);

  // Drive both scans; the leader pulls ahead far enough to be throttled.
  struct Step {
    int scan;  // 1 or 2.
    sim::PageId pos;
    uint64_t done;
    sim::Micros at;
  };
  const Step script[] = {
      {2, 80, 16, sim::Seconds(1) + 100'000},
      {1, 128, 128, sim::Seconds(2)},
      {2, 96, 32, sim::Seconds(2) + 100'000},
      {1, 224, 224, sim::Seconds(3)},  // Gap 128 > threshold: throttle.
      {2, 112, 48, sim::Seconds(3) + 100'000},
  };
  for (const Step& s : script) {
    const ssm::ScanId ida = s.scan == 1 ? a1->id : a2->id;
    const ssm::ScanId idb = s.scan == 1 ? b1->id : b2->id;
    auto ra = implicit.UpdateLocation(ida, s.pos, s.done, s.at);
    auto rb = explicit_mgr.UpdateLocation(idb, s.pos, s.done, s.at);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(ra->wait, rb->wait);
    EXPECT_EQ(ra->priority, rb->priority);
    EXPECT_EQ(ra->is_leader, rb->is_leader);
    EXPECT_EQ(ra->is_trailer, rb->is_trailer);
    EXPECT_EQ(ra->group_size, rb->group_size);
    EXPECT_EQ(ra->gap_pages, rb->gap_pages);
  }

  ASSERT_TRUE(implicit.EndScan(a1->id, sim::Seconds(4)).ok());
  ASSERT_TRUE(explicit_mgr.EndScan(b1->id, sim::Seconds(4)).ok());
  ASSERT_TRUE(implicit.EndScan(a2->id, sim::Seconds(5)).ok());
  ASSERT_TRUE(explicit_mgr.EndScan(b2->id, sim::Seconds(5)).ok());

  const ssm::SsmStats sa = implicit.stats();
  const ssm::SsmStats sb = explicit_mgr.stats();
  EXPECT_EQ(sa.scans_started, sb.scans_started);
  EXPECT_EQ(sa.scans_joined, sb.scans_joined);
  EXPECT_EQ(sa.scans_ended, sb.scans_ended);
  EXPECT_EQ(sa.updates, sb.updates);
  EXPECT_EQ(sa.regroups, sb.regroups);
  EXPECT_EQ(sa.throttle_events, sb.throttle_events);
  EXPECT_EQ(sa.total_wait, sb.total_wait);
  EXPECT_EQ(sa.cap_suppressions, sb.cap_suppressions);
  EXPECT_TRUE(implicit.CheckInvariants().ok());
  EXPECT_TRUE(explicit_mgr.CheckInvariants().ok());
}

TEST(PolicyParityTest, RivalPoliciesPreserveQueryAnswers) {
  // ABM and PBM change caching and scheduling, never results: identical
  // group keys and row counts, and aggregate values equal to a tight
  // relative tolerance. (Not bit-identical: a different placement changes
  // the scan's wrap point, hence the floating-point fold order over the
  // same pages — the same geometry caveat as DESIGN.md §12.3.)
  exec::Database* db = testutil::SharedLineitemDb(kPages, kSeed);
  const auto streams = testutil::StaggeredQ1Q6("lineitem", sim::Seconds(2));

  exec::RunConfig config =
      testutil::MakeRunConfig(exec::ScanMode::kShared, /*frames=*/64);
  auto reference = db->Run(config, streams);
  ASSERT_TRUE(reference.ok());

  for (const PolicyKind kind :
       {PolicyKind::kAbmRelevance, PolicyKind::kPbmPredictive}) {
    exec::RunConfig rival = config;
    rival.policy = kind;
    auto run = db->Run(rival, streams);
    ASSERT_TRUE(run.ok()) << PolicyKindName(kind);
    ASSERT_EQ(run->streams.size(), reference->streams.size());
    for (size_t s = 0; s < run->streams.size(); ++s) {
      ASSERT_EQ(run->streams[s].queries.size(),
                reference->streams[s].queries.size());
      for (size_t q = 0; q < run->streams[s].queries.size(); ++q) {
        const exec::QueryOutput& ro = run->streams[s].queries[q].output;
        const exec::QueryOutput& eo = reference->streams[s].queries[q].output;
        EXPECT_EQ(ro.rows_matched, eo.rows_matched)
            << PolicyKindName(kind) << " stream " << s << " query " << q;
        ASSERT_EQ(ro.groups.size(), eo.groups.size());
        for (size_t g = 0; g < ro.groups.size(); ++g) {
          EXPECT_EQ(ro.groups[g].key, eo.groups[g].key);
          ASSERT_EQ(ro.groups[g].values.size(), eo.groups[g].values.size());
          for (size_t v = 0; v < ro.groups[g].values.size(); ++v) {
            EXPECT_NEAR(ro.groups[g].values[v], eo.groups[g].values[v],
                        std::abs(eo.groups[g].values[v]) * 1e-9 + 1e-9)
                << PolicyKindName(kind) << " stream " << s << " query " << q;
          }
        }
      }
    }
    // The workload always reads the same logical pages; only the cache
    // behaviour behind them may differ.
    EXPECT_EQ(run->buffer.logical_reads, reference->buffer.logical_reads)
        << PolicyKindName(kind);
    EXPECT_EQ(run->buffer.hits + run->buffer.misses,
              run->buffer.logical_reads)
        << PolicyKindName(kind);
  }
}

TEST(PolicyParityTest, PolicyNamesAreStable) {
  // Bench output and reports key on these strings.
  EXPECT_STREQ(PolicyKindName(PolicyKind::kGroupThrottle), "group-throttle");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kAbmRelevance), "abm-relevance");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kPbmPredictive), "pbm-predictive");
  ssm::SsmOptions options;
  auto board = std::make_shared<buffer::ScanPositionBoard>();
  EXPECT_STREQ(
      ssm::MakeSharingPolicy(PolicyKind::kAbmRelevance, options, nullptr)
          ->name(),
      "abm-relevance");
  EXPECT_STREQ(
      ssm::MakeSharingPolicy(PolicyKind::kPbmPredictive, options, board)
          ->name(),
      "pbm-predictive");
  EXPECT_STREQ(buffer::MakePagePolicy(PolicyKind::kGroupThrottle, nullptr)
                   ->name(),
               "group-throttle");
}

}  // namespace
}  // namespace scanshare
