#include "exec/predicate.h"

#include <gtest/gtest.h>

namespace scanshare::exec {
namespace {

using storage::Column;
using storage::Schema;
using storage::Value;

Schema TestSchema() {
  return Schema({Column::Int64("date"), Column::Double("disc"),
                 Column::Char("flag", 1), Column::Char("name", 6)});
}

std::vector<uint8_t> Encode(const Schema& s, int64_t date, double disc,
                            const std::string& flag, const std::string& name) {
  std::vector<uint8_t> out;
  EXPECT_TRUE(s.EncodeTuple({Value::Int64(date), Value::Double(disc),
                             Value::Char(flag), Value::Char(name)},
                            &out)
                  .ok());
  return out;
}

TEST(PredicateTest, EmptyAcceptsEverything) {
  Schema s = TestSchema();
  Predicate p;
  ASSERT_TRUE(p.Bind(s).ok());
  auto t = Encode(s, 0, 0.0, "A", "x");
  EXPECT_TRUE(p.Eval(s, t.data()));
  EXPECT_TRUE(p.empty());
}

TEST(PredicateTest, Int64Comparisons) {
  Schema s = TestSchema();
  auto t = Encode(s, 100, 0.0, "A", "x");
  struct Case {
    CompareOp op;
    int64_t rhs;
    bool expect;
  };
  const Case cases[] = {
      {CompareOp::kLt, 101, true},  {CompareOp::kLt, 100, false},
      {CompareOp::kLe, 100, true},  {CompareOp::kLe, 99, false},
      {CompareOp::kGt, 99, true},   {CompareOp::kGt, 100, false},
      {CompareOp::kGe, 100, true},  {CompareOp::kGe, 101, false},
      {CompareOp::kEq, 100, true},  {CompareOp::kEq, 1, false},
      {CompareOp::kNe, 1, true},    {CompareOp::kNe, 100, false},
  };
  for (const Case& c : cases) {
    Predicate p;
    p.And("date", c.op, Value::Int64(c.rhs));
    ASSERT_TRUE(p.Bind(s).ok());
    EXPECT_EQ(p.Eval(s, t.data()), c.expect)
        << "op " << static_cast<int>(c.op) << " rhs " << c.rhs;
  }
}

TEST(PredicateTest, DoubleComparison) {
  Schema s = TestSchema();
  auto t = Encode(s, 0, 0.06, "A", "x");
  Predicate p;
  p.And("disc", CompareOp::kGe, Value::Double(0.05))
      .And("disc", CompareOp::kLe, Value::Double(0.07));
  ASSERT_TRUE(p.Bind(s).ok());
  EXPECT_TRUE(p.Eval(s, t.data()));

  auto out = Encode(s, 0, 0.08, "A", "x");
  EXPECT_FALSE(p.Eval(s, out.data()));
}

TEST(PredicateTest, CharEquality) {
  Schema s = TestSchema();
  Predicate p;
  p.And("flag", CompareOp::kEq, Value::Char("R"));
  ASSERT_TRUE(p.Bind(s).ok());
  EXPECT_TRUE(p.Eval(s, Encode(s, 0, 0, "R", "x").data()));
  EXPECT_FALSE(p.Eval(s, Encode(s, 0, 0, "A", "x").data()));
}

TEST(PredicateTest, CharInequality) {
  Schema s = TestSchema();
  Predicate p;
  p.And("flag", CompareOp::kNe, Value::Char("R"));
  ASSERT_TRUE(p.Bind(s).ok());
  EXPECT_FALSE(p.Eval(s, Encode(s, 0, 0, "R", "x").data()));
  EXPECT_TRUE(p.Eval(s, Encode(s, 0, 0, "N", "x").data()));
}

TEST(PredicateTest, CharPrefixIsNotEqual) {
  Schema s = TestSchema();
  Predicate p;
  p.And("name", CompareOp::kEq, Value::Char("abc"));
  ASSERT_TRUE(p.Bind(s).ok());
  EXPECT_TRUE(p.Eval(s, Encode(s, 0, 0, "A", "abc").data()));
  // Field "abcdef" starts with the constant but is longer: not equal.
  EXPECT_FALSE(p.Eval(s, Encode(s, 0, 0, "A", "abcdef").data()));
}

TEST(PredicateTest, ConjunctionShortCircuits) {
  Schema s = TestSchema();
  Predicate p;
  p.And("date", CompareOp::kGe, Value::Int64(50))
      .And("date", CompareOp::kLt, Value::Int64(150))
      .And("flag", CompareOp::kEq, Value::Char("A"));
  ASSERT_TRUE(p.Bind(s).ok());
  EXPECT_EQ(p.size(), 3u);
  EXPECT_TRUE(p.Eval(s, Encode(s, 100, 0, "A", "x").data()));
  EXPECT_FALSE(p.Eval(s, Encode(s, 100, 0, "B", "x").data()));
  EXPECT_FALSE(p.Eval(s, Encode(s, 10, 0, "A", "x").data()));
  EXPECT_FALSE(p.Eval(s, Encode(s, 200, 0, "A", "x").data()));
}

TEST(PredicateTest, BindRejectsUnknownColumn) {
  Schema s = TestSchema();
  Predicate p;
  p.And("ghost", CompareOp::kEq, Value::Int64(1));
  EXPECT_EQ(p.Bind(s).code(), Status::Code::kNotFound);
}

TEST(PredicateTest, BindRejectsTypeMismatch) {
  Schema s = TestSchema();
  Predicate p;
  p.And("date", CompareOp::kEq, Value::Double(1.0));
  EXPECT_EQ(p.Bind(s).code(), Status::Code::kInvalidArgument);
}

TEST(PredicateTest, BindRejectsOverlongCharConstant) {
  Schema s = TestSchema();
  Predicate p;
  p.And("flag", CompareOp::kEq, Value::Char("AB"));
  EXPECT_EQ(p.Bind(s).code(), Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace scanshare::exec
