// Parameterized property sweeps: invariants that must hold across stream
// counts, buffer sizes, and workload mixes.

#include <gtest/gtest.h>

#include "exec/engine.h"
#include "metrics/report.h"
#include "testutil.h"
#include "workload/queries.h"

namespace scanshare {
namespace {

using exec::Database;
using exec::RunConfig;
using exec::ScanMode;
using exec::StreamSpec;

Database* SharedDb() { return testutil::SharedLineitemDb(128, 777); }

struct SweepParam {
  size_t streams;
  size_t frames;
  const char* label;
};

void PrintTo(const SweepParam& p, std::ostream* os) { *os << p.label; }

class ConcurrencySweepTest : public ::testing::TestWithParam<SweepParam> {};

// Invariant 1: scan sharing never reads more pages from disk than the
// baseline for identical concurrent scans.
TEST_P(ConcurrencySweepTest, SharedNeverReadsMoreThanBaseline) {
  const SweepParam p = GetParam();
  StreamSpec s;
  s.queries.push_back(workload::MakeQ6Like("lineitem"));
  std::vector<StreamSpec> streams(p.streams, s);

  RunConfig c;
  c.buffer.num_frames = p.frames;
  c.mode = ScanMode::kBaseline;
  auto base = SharedDb()->Run(c, streams);
  ASSERT_TRUE(base.ok());
  c.mode = ScanMode::kShared;
  auto shared = SharedDb()->Run(c, streams);
  ASSERT_TRUE(shared.ok());

  EXPECT_LE(shared->disk.pages_read, base->disk.pages_read * 102 / 100);
}

// Invariant 2: every query scans exactly its full tuple set regardless of
// mode, stream count, or buffer size.
TEST_P(ConcurrencySweepTest, EveryScanCoversAllTuples) {
  const SweepParam p = GetParam();
  StreamSpec s;
  s.queries.push_back(workload::MakeQ6Like("lineitem"));
  std::vector<StreamSpec> streams(p.streams, s);

  RunConfig c;
  c.buffer.num_frames = p.frames;
  c.mode = ScanMode::kShared;
  auto run = SharedDb()->Run(c, streams);
  ASSERT_TRUE(run.ok());

  auto table = SharedDb()->catalog()->GetTable("lineitem");
  for (const auto& stream : run->streams) {
    for (const auto& q : stream.queries) {
      EXPECT_EQ(q.metrics.tuples_scanned, (*table)->num_tuples);
      EXPECT_EQ(q.metrics.pages_scanned, (*table)->num_pages);
    }
  }
}

// Invariant 3: buffer accounting. Hits + misses = logical reads, and
// physical pages transferred are bounded below by misses.
TEST_P(ConcurrencySweepTest, BufferAccountingConsistent) {
  const SweepParam p = GetParam();
  StreamSpec s;
  s.queries.push_back(workload::MakeQ6Like("lineitem"));
  std::vector<StreamSpec> streams(p.streams, s);

  RunConfig c;
  c.buffer.num_frames = p.frames;
  c.mode = ScanMode::kShared;
  auto run = SharedDb()->Run(c, streams);
  ASSERT_TRUE(run.ok());

  EXPECT_EQ(run->buffer.hits + run->buffer.misses, run->buffer.logical_reads);
  EXPECT_GE(run->buffer.physical_pages, run->buffer.misses);
  EXPECT_EQ(run->disk.pages_read, run->buffer.physical_pages);
}

// Invariant 4: virtual time sanity — makespan at least as long as the
// longest stream, every query interval well-formed, CPU+IO+overhead fits
// inside the query's elapsed interval.
TEST_P(ConcurrencySweepTest, TimeAccountingConsistent) {
  const SweepParam p = GetParam();
  StreamSpec s;
  s.queries.push_back(workload::MakeQ1Like("lineitem"));
  std::vector<StreamSpec> streams(p.streams, s);

  RunConfig c;
  c.buffer.num_frames = p.frames;
  c.mode = ScanMode::kShared;
  auto run = SharedDb()->Run(c, streams);
  ASSERT_TRUE(run.ok());

  for (const auto& stream : run->streams) {
    EXPECT_LE(stream.end, run->makespan);
    for (const auto& q : stream.queries) {
      EXPECT_LE(q.metrics.start_time, q.metrics.end_time);
      const sim::Micros attributed =
          q.metrics.cpu + q.metrics.io_stall + q.metrics.overhead +
          q.metrics.throttle_wait;
      EXPECT_LE(attributed, q.metrics.Elapsed() + 16)  // Rounding slack.
          << "attributed time exceeds elapsed";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConcurrencySweepTest,
    ::testing::Values(SweepParam{1, 16, "s1_f16"}, SweepParam{2, 16, "s2_f16"},
                      SweepParam{2, 64, "s2_f64"}, SweepParam{3, 16, "s3_f16"},
                      SweepParam{3, 64, "s3_f64"}, SweepParam{5, 32, "s5_f32"},
                      SweepParam{5, 160, "s5_f160"}),
    [](const auto& tpi) { return tpi.param.label; });

// Fairness-cap sweep: the accumulated throttle wait of any scan must stay
// within cap * estimated duration (plus one quantum of slack).
class FairnessCapSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(FairnessCapSweepTest, AccumulatedWaitBounded) {
  const double cap = GetParam();
  std::vector<StreamSpec> streams(2);
  streams[0].queries.push_back(workload::MakeQ6Like("lineitem"));  // Fast.
  streams[1].queries.push_back(workload::MakeQ1Like("lineitem"));  // Slow.

  RunConfig c;
  c.mode = ScanMode::kShared;
  c.buffer.num_frames = 32;
  c.ssm.fairness_cap = cap;
  auto run = SharedDb()->Run(c, streams);
  ASSERT_TRUE(run.ok());

  for (const auto& stream : run->streams) {
    for (const auto& q : stream.queries) {
      // The wait can overshoot the cap by at most one inserted wait
      // (the cap is checked after granting), which is itself bounded.
      const double bound =
          cap * static_cast<double>(q.metrics.Elapsed()) +
          static_cast<double>(c.ssm.max_wait_per_update);
      EXPECT_LE(static_cast<double>(q.metrics.throttle_wait), bound + 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Caps, FairnessCapSweepTest,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 1.0),
                         [](const auto& tpi) {
                           // Built with += (not operator+) to sidestep a GCC 12
                           // -Wrestrict false positive on inlined string concat.
                           std::string name = "cap";
                           name += std::to_string(static_cast<int>(tpi.param * 100));
                           return name;
                         });

// Extent sweep: prefetch unit must not affect query results, only costs.
class ExtentSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExtentSweepTest, ResultsIndependentOfExtent) {
  StreamSpec s;
  s.queries.push_back(workload::MakeQ6Like("lineitem"));

  RunConfig c;
  c.mode = ScanMode::kShared;
  c.buffer.num_frames = 64;
  c.buffer.prefetch_extent_pages = GetParam();
  auto run = SharedDb()->Run(c, {s});
  ASSERT_TRUE(run.ok());

  RunConfig ref = c;
  ref.buffer.prefetch_extent_pages = 16;
  auto reference = SharedDb()->Run(ref, {s});
  ASSERT_TRUE(reference.ok());

  const auto& a = run->streams[0].queries[0].output;
  const auto& b = reference->streams[0].queries[0].output;
  ASSERT_EQ(a.groups.size(), b.groups.size());
  EXPECT_NEAR(a.groups[0].values[0], b.groups[0].values[0],
              std::abs(b.groups[0].values[0]) * 1e-9);
  EXPECT_EQ(a.rows_matched, b.rows_matched);
}

INSTANTIATE_TEST_SUITE_P(Extents, ExtentSweepTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32),
                         [](const auto& tpi) {
                           std::string name = "e";
                           name += std::to_string(tpi.param);
                           return name;
                         });

// Kernel sweep: the columnar batch kernel (selection bitmap + masked
// folds) must be indistinguishable from the scalar tuple-at-a-time
// kernel — not epsilon-close, bit-identical, including every aggregate
// double, every counter, and every virtual timestamp. This is the
// contract that lets KernelMode::kColumnar be the default.
struct KernelParam {
  const char* label;
  exec::QuerySpec (*make)(const std::string&, int);
};

exec::QuerySpec MakeQ6(const std::string& t, int) {
  return workload::MakeQ6Like(t);
}
exec::QuerySpec MakeQ1(const std::string& t, int) {
  return workload::MakeQ1Like(t);
}
exec::QuerySpec MakeMid(const std::string& t, int) {
  return workload::MakeMidWeight(t);
}

void PrintTo(const KernelParam& p, std::ostream* os) { *os << p.label; }

class KernelSweepTest : public ::testing::TestWithParam<KernelParam> {};

TEST_P(KernelSweepTest, ColumnarBitIdenticalToScalar) {
  const KernelParam p = GetParam();
  std::vector<StreamSpec> streams(3);
  for (size_t i = 0; i < streams.size(); ++i) {
    streams[i].start_delay = sim::Micros{i * 5000};
    streams[i].queries.push_back(p.make("lineitem", static_cast<int>(i)));
  }

  RunConfig c;
  c.mode = ScanMode::kShared;
  c.buffer.num_frames = 32;
  c.kernel = exec::KernelMode::kScalar;
  auto scalar = SharedDb()->Run(c, streams);
  ASSERT_TRUE(scalar.ok());
  c.kernel = exec::KernelMode::kColumnar;
  auto columnar = SharedDb()->Run(c, streams);
  ASSERT_TRUE(columnar.ok());

  std::string diff;
  EXPECT_TRUE(metrics::BitIdentical(*scalar, *columnar, &diff))
      << "first difference: " << diff;
}

INSTANTIATE_TEST_SUITE_P(Kernels, KernelSweepTest,
                         ::testing::Values(KernelParam{"q6", MakeQ6},
                                           KernelParam{"q1", MakeQ1},
                                           KernelParam{"mid", MakeMid}),
                         [](const auto& tpi) { return tpi.param.label; });

// Baseline-mode variant with the default mix (exercises the unfiltered
// count-only path and multi-query streams).
TEST(KernelSweepTest, BaselineMixBitIdentical) {
  auto streams = workload::MakeThroughputStreams(
      workload::DefaultQueryMix("lineitem"), 2, 4, 99);

  RunConfig c;
  c.mode = ScanMode::kBaseline;
  c.buffer.num_frames = 24;
  c.kernel = exec::KernelMode::kScalar;
  auto scalar = SharedDb()->Run(c, streams);
  ASSERT_TRUE(scalar.ok());
  c.kernel = exec::KernelMode::kColumnar;
  auto columnar = SharedDb()->Run(c, streams);
  ASSERT_TRUE(columnar.ok());

  std::string diff;
  EXPECT_TRUE(metrics::BitIdentical(*scalar, *columnar, &diff))
      << "first difference: " << diff;
}

}  // namespace
}  // namespace scanshare
