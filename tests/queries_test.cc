#include "workload/queries.h"

#include <gtest/gtest.h>

#include "exec/engine.h"
#include "workload/tpch_gen.h"

namespace scanshare::workload {
namespace {

class QueriesTest : public ::testing::Test {
 protected:
  QueriesTest() {
    db_ = std::make_unique<exec::Database>();
    auto info =
        GenerateLineitem(db_->catalog(), "lineitem", LineitemRowsForPages(48), 42);
    EXPECT_TRUE(info.ok());
  }

  exec::RunResult RunSingle(const exec::QuerySpec& q) {
    exec::StreamSpec s;
    s.queries.push_back(q);
    exec::RunConfig c;
    c.buffer.num_frames = 32;
    c.buffer.prefetch_extent_pages = 4;  // Fine-grained for a 48-page table.
    auto r = db_->Run(c, {s});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  std::unique_ptr<exec::Database> db_;
};

TEST_F(QueriesTest, Q1BindsAndProducesSixGroups) {
  auto result = RunSingle(MakeQ1Like("lineitem"));
  const auto& out = result.streams[0].queries[0].output;
  // 3 return flags x 2 line statuses.
  EXPECT_EQ(out.groups.size(), 6u);
  // Q1's predicate keeps nearly everything.
  EXPECT_GT(static_cast<double>(out.rows_matched),
            0.9 * static_cast<double>(out.rows_scanned));
  // sum_qty (index 0) positive in every group.
  for (const auto& g : out.groups) {
    EXPECT_GT(g.values[0], 0.0);
    EXPECT_EQ(g.values.size(), 8u);
  }
}

TEST_F(QueriesTest, Q1AvgConsistentWithSumAndCount) {
  auto result = RunSingle(MakeQ1Like("lineitem"));
  const auto& out = result.streams[0].queries[0].output;
  for (const auto& g : out.groups) {
    const double sum_qty = g.values[0];
    const double avg_qty = g.values[4];
    const double count = g.values[7];
    EXPECT_NEAR(avg_qty, sum_qty / count, 1e-6);
  }
}

TEST_F(QueriesTest, Q6SelectivityIsLow) {
  auto result = RunSingle(MakeQ6Like("lineitem"));
  const auto& out = result.streams[0].queries[0].output;
  const double sel = static_cast<double>(out.rows_matched) /
                     static_cast<double>(out.rows_scanned);
  // Year window (1/7) x discount band (3/11) x quantity (23/50) ~ 1.8 %.
  EXPECT_GT(sel, 0.005);
  EXPECT_LT(sel, 0.04);
  ASSERT_EQ(out.groups.size(), 1u);
  EXPECT_GT(out.groups[0].values[0], 0.0);  // Revenue positive.
}

TEST_F(QueriesTest, Q6DifferentYearsDifferentRevenue) {
  auto y5 = RunSingle(MakeQ6Like("lineitem", 5));
  auto y2 = RunSingle(MakeQ6Like("lineitem", 2));
  EXPECT_NE(y5.streams[0].queries[0].output.groups[0].values[0],
            y2.streams[0].queries[0].output.groups[0].values[0]);
}

TEST_F(QueriesTest, Q6YearClamped) {
  // Out-of-domain years must still produce a valid in-range window.
  auto result = RunSingle(MakeQ6Like("lineitem", 99));
  EXPECT_GT(result.streams[0].queries[0].output.rows_matched, 0u);
}

TEST_F(QueriesTest, Q1IsCpuBoundQ6IsIoBound) {
  auto q1 = RunSingle(MakeQ1Like("lineitem"));
  auto q6 = RunSingle(MakeQ6Like("lineitem"));
  const auto& m1 = q1.streams[0].queries[0].metrics;
  const auto& m6 = q6.streams[0].queries[0].metrics;
  // Q1: CPU dominates I/O stall; Q6: the reverse. This is the workload
  // property the paper's Figures 15/16 rest on.
  EXPECT_GT(m1.cpu, m1.io_stall);
  EXPECT_GT(m6.io_stall, m6.cpu);
}

TEST_F(QueriesTest, RangeScanRespectsFraction) {
  auto full = RunSingle(MakeRangeScan("lineitem", 0.0, 1.0, "full"));
  auto half = RunSingle(MakeRangeScan("lineitem", 0.5, 1.0, "half"));
  const auto& mf = full.streams[0].queries[0].metrics;
  const auto& mh = half.streams[0].queries[0].metrics;
  EXPECT_LT(mh.pages_scanned, mf.pages_scanned * 6 / 10);
  EXPECT_GT(mh.pages_scanned, mf.pages_scanned * 4 / 10);
}

TEST_F(QueriesTest, MidWeightFiltersReturnedRows) {
  auto result = RunSingle(MakeMidWeight("lineitem"));
  const auto& out = result.streams[0].queries[0].output;
  const double sel = static_cast<double>(out.rows_matched) /
                     static_cast<double>(out.rows_scanned);
  EXPECT_NEAR(sel, 2.0 / 3.0, 0.05);  // Keeps 'A' and 'N' of A/N/R.
  EXPECT_EQ(out.groups.size(), 2u);   // O/F line statuses.
}

TEST(QueryMixTest, DefaultMixShape) {
  auto mix = DefaultQueryMix("lineitem");
  ASSERT_EQ(mix.size(), 6u);
  EXPECT_EQ(mix[0].name, "Q1");
  EXPECT_EQ(mix[1].name, "Q6");
  EXPECT_EQ(mix[2].name, "Q6b");
  EXPECT_EQ(mix[3].name, "QM");
  EXPECT_EQ(mix[4].name, "QR1");
  EXPECT_EQ(mix[5].name, "QR2");
}

TEST(QueryMixTest, ThroughputStreamsShape) {
  auto mix = DefaultQueryMix("lineitem");
  auto streams = MakeThroughputStreams(mix, 5, 12, 7);
  ASSERT_EQ(streams.size(), 5u);
  for (const auto& s : streams) {
    EXPECT_EQ(s.queries.size(), 12u);
    EXPECT_EQ(s.start_delay, 0u);
  }
}

TEST(QueryMixTest, ThroughputStreamsBalancedMix) {
  auto mix = DefaultQueryMix("lineitem");
  auto streams = MakeThroughputStreams(mix, 1, 12, 7);
  // 12 queries over 6 templates: each appears exactly twice.
  std::map<std::string, int> counts;
  for (const auto& q : streams[0].queries) ++counts[q.name];
  for (const auto& [name, c] : counts) EXPECT_EQ(c, 2) << name;
}

TEST(QueryMixTest, StreamsArePermutedDifferently) {
  auto mix = DefaultQueryMix("lineitem");
  auto streams = MakeThroughputStreams(mix, 5, 12, 7);
  // At least one pair of streams must order queries differently (the
  // TPC-H throughput-test property that different queries overlap).
  bool any_differ = false;
  for (size_t i = 1; i < streams.size() && !any_differ; ++i) {
    for (size_t q = 0; q < 12; ++q) {
      if (streams[0].queries[q].name != streams[i].queries[q].name) {
        any_differ = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(QueryMixTest, ThroughputStreamsDeterministic) {
  auto mix = DefaultQueryMix("lineitem");
  auto a = MakeThroughputStreams(mix, 3, 6, 5);
  auto b = MakeThroughputStreams(mix, 3, 6, 5);
  for (size_t s = 0; s < a.size(); ++s) {
    for (size_t q = 0; q < a[s].queries.size(); ++q) {
      EXPECT_EQ(a[s].queries[q].name, b[s].queries[q].name);
    }
  }
}

TEST(QueryMixTest, StaggeredStreamsDelays) {
  auto streams =
      MakeStaggeredStreams(MakeQ6Like("lineitem"), 3, sim::Seconds(10));
  ASSERT_EQ(streams.size(), 3u);
  EXPECT_EQ(streams[0].start_delay, 0u);
  EXPECT_EQ(streams[1].start_delay, sim::Seconds(10));
  EXPECT_EQ(streams[2].start_delay, sim::Seconds(20));
  for (const auto& s : streams) EXPECT_EQ(s.queries.size(), 1u);
}

}  // namespace
}  // namespace scanshare::workload
