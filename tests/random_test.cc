#include "common/random.h"

#include <gtest/gtest.h>

#include <set>

namespace scanshare {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next()) << "diverged at step " << i;
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedResetsStream) {
  Rng a(7);
  const uint64_t first = a.Next();
  a.Next();
  a.Reseed(7);
  EXPECT_EQ(a.Next(), first);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All 7 values appear in 10k draws.
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // Mean of U(0,1).
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.3, 0.03);
}

TEST(RngTest, UniformRoughlyUniform) {
  Rng rng(23);
  int counts[10] = {0};
  for (int i = 0; i < 100000; ++i) ++counts[rng.Uniform(10)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

}  // namespace
}  // namespace scanshare
