#include "buffer/replacer.h"

#include <gtest/gtest.h>

namespace scanshare::buffer {
namespace {

// The two policies share most behaviour; run the common contract over both.
enum class Kind { kLru, kPriorityLru };

std::unique_ptr<ReplacementPolicy> Make(Kind kind, size_t frames) {
  if (kind == Kind::kLru) return std::make_unique<LruReplacer>(frames);
  return std::make_unique<PriorityLruReplacer>(frames);
}

class ReplacerContractTest : public ::testing::TestWithParam<Kind> {};

TEST_P(ReplacerContractTest, EvictEmptyFails) {
  auto r = Make(GetParam(), 4);
  EXPECT_EQ(r->Evict().status().code(), Status::Code::kResourceExhausted);
}

TEST_P(ReplacerContractTest, PinnedFramesNotEvictable) {
  auto r = Make(GetParam(), 4);
  r->Pin(0);
  r->Pin(1);
  EXPECT_EQ(r->EvictableCount(), 0u);
  EXPECT_FALSE(r->Evict().ok());
  r->Unpin(0);
  EXPECT_EQ(r->EvictableCount(), 1u);
  auto v = r->Evict();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0u);
}

TEST_P(ReplacerContractTest, LruOrderWithinEqualTreatment) {
  auto r = Make(GetParam(), 4);
  for (FrameId f = 0; f < 3; ++f) {
    r->Pin(f);
    r->Unpin(f);
  }
  // Oldest unpinned goes first.
  EXPECT_EQ(*r->Evict(), 0u);
  EXPECT_EQ(*r->Evict(), 1u);
  EXPECT_EQ(*r->Evict(), 2u);
}

TEST_P(ReplacerContractTest, RecordAccessRefreshesRecency) {
  auto r = Make(GetParam(), 4);
  for (FrameId f = 0; f < 3; ++f) {
    r->Pin(f);
    r->Unpin(f);
  }
  r->RecordAccess(0);  // 0 becomes most recent.
  EXPECT_EQ(*r->Evict(), 1u);
  EXPECT_EQ(*r->Evict(), 2u);
  EXPECT_EQ(*r->Evict(), 0u);
}

TEST_P(ReplacerContractTest, RemoveForgetsFrame) {
  auto r = Make(GetParam(), 4);
  r->Pin(0);
  r->Unpin(0);
  r->Remove(0);
  EXPECT_EQ(r->EvictableCount(), 0u);
  EXPECT_FALSE(r->Evict().ok());
}

TEST_P(ReplacerContractTest, RepinnedFrameLeavesCandidates) {
  auto r = Make(GetParam(), 4);
  r->Pin(0);
  r->Unpin(0);
  r->Pin(0);
  EXPECT_EQ(r->EvictableCount(), 0u);
}

TEST_P(ReplacerContractTest, UnpinOfUnknownFrameIsNoOp) {
  auto r = Make(GetParam(), 4);
  r->Unpin(2);
  EXPECT_EQ(r->EvictableCount(), 0u);
}

TEST_P(ReplacerContractTest, EvictedFrameCanBeReused) {
  auto r = Make(GetParam(), 2);
  r->Pin(0);
  r->Unpin(0);
  ASSERT_EQ(*r->Evict(), 0u);
  r->Pin(0);  // Fresh life for the frame.
  r->Unpin(0);
  EXPECT_EQ(*r->Evict(), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, ReplacerContractTest,
                         ::testing::Values(Kind::kLru, Kind::kPriorityLru),
                         [](const auto& tpi) {
                           return tpi.param == Kind::kLru ? "Lru" : "PriorityLru";
                         });

// ------------------------- priority-specific behaviour -------------------

TEST(PriorityLruTest, LowEvictedBeforeNormalBeforeHigh) {
  PriorityLruReplacer r(8);
  for (FrameId f = 0; f < 3; ++f) r.Pin(f);
  r.SetPriority(0, PagePriority::kHigh);
  r.SetPriority(1, PagePriority::kLow);
  r.SetPriority(2, PagePriority::kNormal);
  for (FrameId f = 0; f < 3; ++f) r.Unpin(f);

  EXPECT_EQ(*r.Evict(), 1u);  // Low first.
  EXPECT_EQ(*r.Evict(), 2u);  // Then normal.
  EXPECT_EQ(*r.Evict(), 0u);  // High last.
}

TEST(PriorityLruTest, LruWithinBucket) {
  PriorityLruReplacer r(8);
  for (FrameId f = 0; f < 3; ++f) {
    r.Pin(f);
    r.SetPriority(f, PagePriority::kLow);
    r.Unpin(f);
  }
  EXPECT_EQ(*r.Evict(), 0u);
  EXPECT_EQ(*r.Evict(), 1u);
  EXPECT_EQ(*r.Evict(), 2u);
}

TEST(PriorityLruTest, PriorityChangeWhileUnpinnedRequeues) {
  PriorityLruReplacer r(8);
  r.Pin(0);
  r.Unpin(0);  // Normal bucket.
  r.Pin(1);
  r.Unpin(1);
  r.SetPriority(0, PagePriority::kHigh);  // Moves out of normal.
  EXPECT_EQ(*r.Evict(), 1u);
  EXPECT_EQ(*r.Evict(), 0u);
}

TEST(PriorityLruTest, PrioritySetWhilePinnedAppliesOnUnpin) {
  PriorityLruReplacer r(8);
  r.Pin(0);
  r.SetPriority(0, PagePriority::kLow);
  r.Pin(1);
  r.Unpin(1);  // Normal.
  r.Unpin(0);  // Lands in low bucket.
  EXPECT_EQ(*r.Evict(), 0u);
}

TEST(PriorityLruTest, NewLifeResetsPriorityToNormal) {
  PriorityLruReplacer r(8);
  r.Pin(0);
  r.SetPriority(0, PagePriority::kHigh);
  r.Unpin(0);
  ASSERT_EQ(*r.Evict(), 0u);
  // The frame returns with a different page; priority must not leak.
  r.Pin(0);
  r.Pin(1);
  r.SetPriority(1, PagePriority::kHigh);
  r.Unpin(0);
  r.Unpin(1);
  EXPECT_EQ(*r.Evict(), 0u);  // 0 is Normal now, evicted before High 1.
}

TEST(PriorityLruTest, SetPriorityOnUnknownFrameIsNoOp) {
  PriorityLruReplacer r(8);
  r.SetPriority(5, PagePriority::kLow);
  EXPECT_EQ(r.EvictableCount(), 0u);
}

TEST(LruTest, SetPriorityIsIgnored) {
  LruReplacer r(8);
  for (FrameId f = 0; f < 2; ++f) r.Pin(f);
  r.SetPriority(0, PagePriority::kLow);
  r.SetPriority(1, PagePriority::kHigh);
  r.Unpin(0);
  r.Unpin(1);
  // Pure LRU: 0 was unpinned first, so it goes first regardless of hints.
  EXPECT_EQ(*r.Evict(), 0u);
}

TEST(ReplacerNameTest, Names) {
  EXPECT_STREQ(LruReplacer(1).Name(), "lru");
  EXPECT_STREQ(PriorityLruReplacer(1).Name(), "priority-lru");
}

}  // namespace
}  // namespace scanshare::buffer
