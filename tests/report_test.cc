#include "metrics/report.h"

#include <gtest/gtest.h>

namespace scanshare::metrics {
namespace {

exec::QueryRecord MakeQuery(const std::string& name, sim::Micros start,
                            sim::Micros end, sim::Micros cpu, sim::Micros io,
                            sim::Micros overhead) {
  exec::QueryRecord q;
  q.name = name;
  q.metrics.start_time = start;
  q.metrics.end_time = end;
  q.metrics.cpu = cpu;
  q.metrics.io_stall = io;
  q.metrics.overhead = overhead;
  return q;
}

TEST(GainTest, Basics) {
  EXPECT_DOUBLE_EQ(Gain(100, 79), 0.21);
  EXPECT_DOUBLE_EQ(Gain(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(Gain(100, 120), -0.2);
  EXPECT_DOUBLE_EQ(Gain(0, 50), 0.0);  // Guard against division by zero.
}

TEST(CpuBreakdownTest, SplitsAttributedTime) {
  exec::RunResult run;
  run.streams.resize(1);
  // 1000us total: 500 cpu, 300 io, 100 overhead, 100 idle.
  run.streams[0].queries.push_back(MakeQuery("q", 0, 1000, 500, 300, 100));
  CpuBreakdown b = ComputeCpuBreakdown(run);
  EXPECT_DOUBLE_EQ(b.user, 0.5);
  EXPECT_DOUBLE_EQ(b.iowait, 0.3);
  EXPECT_DOUBLE_EQ(b.system, 0.1);
  EXPECT_DOUBLE_EQ(b.idle, 0.1);
}

TEST(CpuBreakdownTest, AggregatesAcrossStreams) {
  exec::RunResult run;
  run.streams.resize(2);
  run.streams[0].queries.push_back(MakeQuery("a", 0, 1000, 1000, 0, 0));
  run.streams[1].queries.push_back(MakeQuery("b", 0, 1000, 0, 1000, 0));
  CpuBreakdown b = ComputeCpuBreakdown(run);
  EXPECT_DOUBLE_EQ(b.user, 0.5);
  EXPECT_DOUBLE_EQ(b.iowait, 0.5);
}

TEST(CpuBreakdownTest, EmptyRunIsAllZero) {
  exec::RunResult run;
  CpuBreakdown b = ComputeCpuBreakdown(run);
  EXPECT_DOUBLE_EQ(b.user + b.system + b.iowait + b.idle, 0.0);
}

TEST(ThroughputGainsTest, ComputesAllThree) {
  exec::RunResult base;
  base.makespan = 1000;
  base.disk.pages_read = 300;
  base.disk.seeks = 100;
  exec::RunResult shared;
  shared.makespan = 790;
  shared.disk.pages_read = 201;
  shared.disk.seeks = 66;
  ThroughputGains g = ComputeThroughputGains(base, shared);
  EXPECT_DOUBLE_EQ(g.end_to_end, 0.21);
  EXPECT_DOUBLE_EQ(g.disk_read, 0.33);
  EXPECT_DOUBLE_EQ(g.disk_seek, 0.34);
}

TEST(PerStreamTest, ElapsedPerStream) {
  exec::RunResult run;
  run.streams.resize(2);
  run.streams[0].start = 100;
  run.streams[0].end = 600;
  run.streams[1].start = 0;
  run.streams[1].end = 900;
  auto elapsed = PerStreamElapsed(run);
  ASSERT_EQ(elapsed.size(), 2u);
  EXPECT_EQ(elapsed[0], 500u);
  EXPECT_EQ(elapsed[1], 900u);
}

TEST(PerQueryTest, AveragesByTemplateName) {
  exec::RunResult run;
  run.streams.resize(2);
  run.streams[0].queries.push_back(MakeQuery("Q1", 0, 100, 0, 0, 0));
  run.streams[0].queries.push_back(MakeQuery("Q6", 0, 50, 0, 0, 0));
  run.streams[1].queries.push_back(MakeQuery("Q1", 0, 300, 0, 0, 0));
  auto avg = PerQueryAverages(run);
  ASSERT_EQ(avg.size(), 2u);
  EXPECT_DOUBLE_EQ(avg["Q1"], 200.0);
  EXPECT_DOUBLE_EQ(avg["Q6"], 50.0);
}

TEST(CsvTest, WritesTwoSeries) {
  TimeSeries base(1'000'000), shared(1'000'000);
  base.Add(0, 10.0);
  base.Add(1'000'000, 20.0);
  shared.Add(0, 5.0);
  const std::string path = ::testing::TempDir() + "/series.csv";
  ASSERT_TRUE(WriteTimeSeriesCsv(path, base, shared).ok());

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[128];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_STREQ(line, "t_seconds,base,shared\n");
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_STREQ(line, "0.000,10.000,5.000\n");
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_STREQ(line, "1.000,20.000,0.000\n");
  std::fclose(f);
}

TEST(CsvTest, UnwritablePathFails) {
  TimeSeries base(1), shared(1);
  EXPECT_FALSE(WriteTimeSeriesCsv("/nonexistent-dir/x.csv", base, shared).ok());
}

// Regression (static-analysis sweep): a short write used to be dropped —
// fclose's result was ignored, so a full disk produced a truncated CSV and
// an OK status. /dev/full opens fine and fails every flush with ENOSPC.
TEST(CsvTest, ShortWriteSurfacesAsError) {
  std::FILE* probe = std::fopen("/dev/full", "w");
  if (probe == nullptr) {
    GTEST_SKIP() << "/dev/full not available on this platform";
  }
  std::fclose(probe);
  TimeSeries base(1'000'000), shared(1'000'000);
  base.Add(0, 10.0);
  const Status st = WriteTimeSeriesCsv("/dev/full", base, shared);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kInternal);
}

}  // namespace
}  // namespace scanshare::metrics
