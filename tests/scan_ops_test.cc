#include "exec/scan_ops.h"

#include <gtest/gtest.h>

#include "buffer/buffer_pool.h"
#include "exec/engine.h"
#include "storage/catalog.h"

namespace scanshare::exec {
namespace {

using storage::Column;
using storage::Schema;
using storage::Value;

// A small table with verifiable content: v = row index, flag alternates.
class ScanOpsTest : public ::testing::Test {
 protected:
  static constexpr int kRows = 20000;

  ScanOpsTest() : dm_(&env_), catalog_(&dm_) {
    Schema schema({Column::Double("v"), Column::Char("flag", 1)});
    auto builder = catalog_.NewTableBuilder("t", schema);
    EXPECT_TRUE(builder.ok());
    for (int i = 0; i < kRows; ++i) {
      EXPECT_TRUE((*builder)
                      ->Add({Value::Double(static_cast<double>(i)),
                             Value::Char(i % 2 == 0 ? "E" : "O")})
                      .ok());
    }
    auto info = (*builder)->Finish();
    EXPECT_TRUE(info.ok());
    table_ = *info;

    buffer::BufferPoolOptions bp;
    bp.num_frames = 64;
    bp.prefetch_extent_pages = 4;
    pool_ = std::make_unique<buffer::BufferPool>(
        &dm_, std::make_unique<buffer::PriorityLruReplacer>(bp.num_frames), bp);

    ssm::SsmOptions so;
    so.bufferpool_pages = bp.num_frames;
    so.prefetch_extent_pages = bp.prefetch_extent_pages;
    ssm_ = std::make_unique<ssm::ScanSharingManager>(so);
  }

  ScanEnv Env(bool shared) {
    ScanEnv e;
    e.pool = pool_.get();
    e.table = &table_;
    e.cost = &cost_;
    e.disk_options = &env_.disk().options();
    e.ssm = shared ? ssm_.get() : nullptr;
    return e;
  }

  QuerySpec SumQuery() {
    QuerySpec q;
    q.name = "sum";
    q.table = "t";
    q.aggs.push_back(AggSpec{"sum_v", AggOp::kSum, Expr::Column("v")});
    q.aggs.push_back(AggSpec{"cnt", AggOp::kCount, Expr::Const(0)});
    return q;
  }

  // Runs a cursor to completion, returning its output.
  QueryOutput Drive(ScanCursor* cursor, sim::Micros start = 0) {
    EXPECT_TRUE(cursor->Open(start).ok());
    sim::Micros now = start;
    bool done = false;
    while (!done) {
      auto elapsed = cursor->Step(now, &done);
      EXPECT_TRUE(elapsed.ok()) << elapsed.status().ToString();
      now += *elapsed;
    }
    auto out = cursor->Close(now);
    EXPECT_TRUE(out.ok());
    return *out;
  }

  static double ExpectedSum() {
    return static_cast<double>(kRows) * (kRows - 1) / 2.0;
  }

  sim::Env env_;
  storage::DiskManager dm_;
  storage::Catalog catalog_;
  storage::TableInfo table_;
  CostModel cost_;
  std::unique_ptr<buffer::BufferPool> pool_;
  std::unique_ptr<ssm::ScanSharingManager> ssm_;
};

TEST_F(ScanOpsTest, BaselineScanComputesCorrectAggregate) {
  auto cursor = MakeTableScan(Env(false), SumQuery());
  QueryOutput out = Drive(cursor.get());
  ASSERT_EQ(out.groups.size(), 1u);
  EXPECT_DOUBLE_EQ(out.groups[0].values[0], ExpectedSum());
  EXPECT_DOUBLE_EQ(out.groups[0].values[1], kRows);
  EXPECT_EQ(out.rows_scanned, static_cast<uint64_t>(kRows));
}

TEST_F(ScanOpsTest, BaselineScanVisitsEveryPageOnce) {
  auto cursor = MakeTableScan(Env(false), SumQuery());
  Drive(cursor.get());
  EXPECT_EQ(cursor->metrics().pages_scanned, table_.num_pages);
  EXPECT_EQ(cursor->metrics().tuples_scanned, static_cast<uint64_t>(kRows));
}

TEST_F(ScanOpsTest, SharedScanAloneSameResult) {
  auto cursor = MakeSharedScan(Env(true), SumQuery());
  QueryOutput out = Drive(cursor.get());
  EXPECT_DOUBLE_EQ(out.groups[0].values[0], ExpectedSum());
  EXPECT_EQ(cursor->metrics().pages_scanned, table_.num_pages);
  // The SSM must be clean afterwards.
  EXPECT_EQ(ssm_->ActiveScanCount(), 0u);
  EXPECT_EQ(ssm_->stats().scans_started, 1u);
  EXPECT_EQ(ssm_->stats().scans_ended, 1u);
}

TEST_F(ScanOpsTest, SharedScanWrapAroundCoversWholeRange) {
  // Prime the SSM: a fake ongoing scan in the middle of the table makes
  // the next shared scan start there and wrap.
  ssm::ScanDescriptor d;
  d.table_id = table_.id;
  d.table_first = table_.first_page;
  d.table_end = table_.end_page();
  d.range_first = table_.first_page;
  d.range_end = table_.end_page();
  d.estimated_pages = table_.num_pages;
  d.estimated_duration = sim::Seconds(10);
  auto decoy = ssm_->StartScan(d, 0);
  ASSERT_TRUE(decoy.ok());
  const sim::PageId mid = table_.first_page + table_.num_pages / 2;
  ASSERT_TRUE(
      ssm_->UpdateLocation(decoy->id, mid, table_.num_pages / 2, 1000).ok());

  auto cursor = MakeSharedScan(Env(true), SumQuery());
  QueryOutput out = Drive(cursor.get(), 2000);
  // Despite starting mid-table, the wrap-around covers every tuple exactly
  // once: the aggregate is identical.
  EXPECT_DOUBLE_EQ(out.groups[0].values[0], ExpectedSum());
  EXPECT_DOUBLE_EQ(out.groups[0].values[1], kRows);
  EXPECT_EQ(cursor->metrics().pages_scanned, table_.num_pages);
  ASSERT_TRUE(ssm_->EndScan(decoy->id, sim::Seconds(100)).ok());
}

TEST_F(ScanOpsTest, PredicateFiltersRows) {
  QuerySpec q = SumQuery();
  q.predicate.And("flag", CompareOp::kEq, Value::Char("E"));
  auto cursor = MakeTableScan(Env(false), q);
  QueryOutput out = Drive(cursor.get());
  EXPECT_DOUBLE_EQ(out.groups[0].values[1], kRows / 2);
  EXPECT_EQ(cursor->metrics().tuples_matched, static_cast<uint64_t>(kRows / 2));
  EXPECT_EQ(cursor->metrics().tuples_scanned, static_cast<uint64_t>(kRows));
}

TEST_F(ScanOpsTest, RangeScanCoversOnlyItsFraction) {
  QuerySpec q = SumQuery();
  q.range_start_frac = 0.5;
  q.range_end_frac = 1.0;
  auto cursor = MakeTableScan(Env(false), q);
  QueryOutput out = Drive(cursor.get());
  // Roughly half the rows, and they are the larger half (rows are loaded
  // in order), so the average value must exceed the global average.
  const double count = out.groups[0].values[1];
  EXPECT_NEAR(count, kRows / 2.0, kRows * 0.05);
  const double avg = out.groups[0].values[0] / count;
  EXPECT_GT(avg, static_cast<double>(kRows) * 0.7);
  EXPECT_LE(cursor->metrics().pages_scanned, table_.num_pages / 2 + 1);
}

TEST_F(ScanOpsTest, StepReportsProgressAndCost) {
  auto cursor = MakeTableScan(Env(false), SumQuery());
  ASSERT_TRUE(cursor->Open(0).ok());
  bool done = false;
  auto elapsed = cursor->Step(0, &done);
  ASSERT_TRUE(elapsed.ok());
  EXPECT_GT(*elapsed, 0u);
  EXPECT_FALSE(done);
  EXPECT_EQ(cursor->metrics().pages_scanned, 4u);  // One extent.
}

TEST_F(ScanOpsTest, LifecycleErrors) {
  auto cursor = MakeTableScan(Env(false), SumQuery());
  bool done = false;
  // Step before Open.
  EXPECT_FALSE(cursor->Step(0, &done).ok());
  ASSERT_TRUE(cursor->Open(0).ok());
  EXPECT_FALSE(cursor->Open(0).ok());  // Double open.
  EXPECT_FALSE(cursor->Close(0).ok()); // Close before done.
  while (!done) {
    ASSERT_TRUE(cursor->Step(0, &done).ok());
  }
  ASSERT_TRUE(cursor->Close(0).ok());
  EXPECT_FALSE(cursor->Close(0).ok());  // Double close.
}

TEST_F(ScanOpsTest, SharedScanRequiresSsm) {
  auto cursor = MakeSharedScan(Env(false), SumQuery());
  EXPECT_EQ(cursor->Open(0).code(), Status::Code::kInvalidArgument);
}

TEST_F(ScanOpsTest, MetricsSplitIoAndCpu) {
  // A count-only query is cheap per tuple, so cold-cache I/O cannot be
  // fully overlapped and must show up as stall time.
  QuerySpec q;
  q.name = "cnt";
  q.table = "t";
  q.aggs.push_back(AggSpec{"cnt", AggOp::kCount, Expr::Const(0)});
  auto cursor = MakeTableScan(Env(false), q);
  Drive(cursor.get());
  const ScanMetrics& m = cursor->metrics();
  EXPECT_GT(m.cpu, 0u);
  EXPECT_GT(m.io_stall, 0u);  // Cold cache: transfer dominates this query.
  EXPECT_GT(m.overhead, 0u);
  EXPECT_GE(m.end_time, m.start_time);
  EXPECT_EQ(m.buffer_hits + m.buffer_misses, table_.num_pages);
}

TEST(ResolveScanRangeTest, FullRange) {
  storage::TableInfo t;
  t.first_page = 100;
  t.num_pages = 64;
  QuerySpec q;
  sim::PageId first, end;
  ResolveScanRange(t, q, 16, &first, &end);
  EXPECT_EQ(first, 100u);
  EXPECT_EQ(end, 164u);
}

TEST(ResolveScanRangeTest, FractionSnapsToExtentGrid) {
  storage::TableInfo t;
  t.first_page = 0;
  t.num_pages = 100;
  QuerySpec q;
  q.range_start_frac = 0.3;  // 30 -> snapped down to 16.
  q.range_end_frac = 0.71;   // 71 -> ceil -> snapped up to 80.
  sim::PageId first, end;
  ResolveScanRange(t, q, 16, &first, &end);
  EXPECT_EQ(first, 16u);
  EXPECT_EQ(end, 80u);
}

TEST(ResolveScanRangeTest, NeverEmpty) {
  storage::TableInfo t;
  t.first_page = 0;
  t.num_pages = 10;
  QuerySpec q;
  q.range_start_frac = 0.99;
  q.range_end_frac = 0.99;
  sim::PageId first, end;
  ResolveScanRange(t, q, 16, &first, &end);
  EXPECT_LT(first, end);
  EXPECT_LE(end, 10u);
}

TEST(EstimateScanDurationTest, PositiveAndMonotonic) {
  storage::TableInfo t;
  t.first_page = 0;
  t.num_pages = 100;
  t.num_tuples = 40000;
  QuerySpec q;
  CostModel cost;
  sim::DiskOptions dopts;
  const sim::Micros d100 = EstimateScanDuration(t, q, cost, dopts, 100);
  const sim::Micros d200 = EstimateScanDuration(t, q, cost, dopts, 200);
  EXPECT_GT(d100, 0u);
  EXPECT_GT(d200, d100);
}

TEST(EstimateScanDurationTest, CpuHeavyQueriesEstimateSlower) {
  storage::TableInfo t;
  t.first_page = 0;
  t.num_pages = 100;
  t.num_tuples = 40000;
  QuerySpec cheap;
  QuerySpec heavy;
  heavy.per_tuple_extra_ns = 5000;
  CostModel cost;
  sim::DiskOptions dopts;
  EXPECT_GT(EstimateScanDuration(t, heavy, cost, dopts, 100),
            EstimateScanDuration(t, cheap, cost, dopts, 100));
}

}  // namespace
}  // namespace scanshare::exec
