#include "ssm/scan_order.h"

#include <gtest/gtest.h>

namespace scanshare::ssm {
namespace {

TEST(ScanCircleTest, Geometry) {
  ScanCircle c(100, 200);
  EXPECT_EQ(c.size(), 100u);
  EXPECT_EQ(c.first(), 100u);
  EXPECT_EQ(c.end(), 200u);
  EXPECT_TRUE(c.Contains(100));
  EXPECT_TRUE(c.Contains(199));
  EXPECT_FALSE(c.Contains(200));
  EXPECT_FALSE(c.Contains(99));
}

TEST(ScanCircleTest, ForwardDistanceNoWrap) {
  ScanCircle c(0, 100);
  EXPECT_EQ(c.ForwardDistance(10, 30), 20u);
  EXPECT_EQ(c.ForwardDistance(0, 99), 99u);
  EXPECT_EQ(c.ForwardDistance(50, 50), 0u);
}

TEST(ScanCircleTest, ForwardDistanceWraps) {
  ScanCircle c(0, 100);
  EXPECT_EQ(c.ForwardDistance(90, 10), 20u);
  EXPECT_EQ(c.ForwardDistance(99, 0), 1u);
  EXPECT_EQ(c.ForwardDistance(1, 0), 99u);
}

TEST(ScanCircleTest, ForwardDistanceWithOffsetBase) {
  ScanCircle c(1000, 1100);
  EXPECT_EQ(c.ForwardDistance(1090, 1010), 20u);
  EXPECT_EQ(c.ForwardDistance(1010, 1090), 80u);
}

TEST(ScanCircleTest, AdvanceNoWrap) {
  ScanCircle c(0, 100);
  EXPECT_EQ(c.Advance(10, 5), 15u);
  EXPECT_EQ(c.Advance(0, 99), 99u);
}

TEST(ScanCircleTest, AdvanceWraps) {
  ScanCircle c(0, 100);
  EXPECT_EQ(c.Advance(95, 10), 5u);
  EXPECT_EQ(c.Advance(50, 100), 50u);  // Full loop.
  EXPECT_EQ(c.Advance(50, 200), 50u);  // Multiple full loops.
  EXPECT_EQ(c.Advance(50, 250), 0u);   // Two loops and a half.
}

TEST(ScanCircleTest, AdvanceWithOffsetBase) {
  ScanCircle c(1000, 1100);
  EXPECT_EQ(c.Advance(1095, 10), 1005u);
}

TEST(ScanCircleTest, MinDistanceSymmetric) {
  ScanCircle c(0, 100);
  EXPECT_EQ(c.MinDistance(10, 30), 20u);
  EXPECT_EQ(c.MinDistance(30, 10), 20u);
  EXPECT_EQ(c.MinDistance(5, 95), 10u);  // Wrap is shorter.
  EXPECT_EQ(c.MinDistance(0, 50), 50u);  // Antipodal.
}

// Property: ForwardDistance(a,b) + ForwardDistance(b,a) == size (a != b).
TEST(ScanCircleTest, DistancesComplement) {
  ScanCircle c(0, 64);
  for (sim::PageId a = 0; a < 64; a += 7) {
    for (sim::PageId b = 0; b < 64; b += 5) {
      if (a == b) continue;
      EXPECT_EQ(c.ForwardDistance(a, b) + c.ForwardDistance(b, a), 64u)
          << "a=" << a << " b=" << b;
    }
  }
}

// Property: Advance by ForwardDistance lands on the target.
TEST(ScanCircleTest, AdvanceInvertsDistance) {
  ScanCircle c(10, 74);
  for (sim::PageId a = 10; a < 74; a += 3) {
    for (sim::PageId b = 10; b < 74; b += 11) {
      EXPECT_EQ(c.Advance(a, c.ForwardDistance(a, b)), b);
    }
  }
}

}  // namespace
}  // namespace scanshare::ssm
