// Copyright (c) scanshare authors. Licensed under the Apache License 2.0.
//
// ScanPositionBoard unit + concurrency tests: the wrap-protocol path
// prediction (pre-wrap two-leg walk, post-wrap tail, dead pages), the
// speed clamp, and a multi-thread publish/read hammer over the board's
// leaf mutex (the PBM policy's SSM-side writers vs. replacer-side readers).

#include "buffer/policies/scan_position_board.h"

#include <algorithm>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "testutil.h"

namespace scanshare::buffer {
namespace {

ScanPositionBoard::Trajectory Traj(uint64_t id, uint64_t position,
                                   double speed_pps, uint64_t range_first,
                                   uint64_t range_end, uint64_t start_page) {
  ScanPositionBoard::Trajectory t;
  t.scan_id = id;
  t.position = position;
  t.speed_pps = speed_pps;
  t.range_first = range_first;
  t.range_end = range_end;
  t.start_page = start_page;
  return t;
}

TEST(ScanPositionBoardTest, EmptyBoardPredictsNothing) {
  ScanPositionBoard board;
  EXPECT_EQ(board.size(), 0u);
  EXPECT_FALSE(board.NextConsumptionUs(0).has_value());
  EXPECT_FALSE(board.NextConsumptionUs(123).has_value());
}

TEST(ScanPositionBoardTest, ForwardLegBeforeRangeEnd) {
  ScanPositionBoard board;
  // Started at page 10, currently at 20, range [0, 100): forward leg is
  // [20, 100), wrap leg is [0, 10).
  board.Upsert(Traj(1, /*position=*/20, /*speed_pps=*/1e6, 0, 100, 10));
  // 30 is 10 pages ahead at 1e6 pages/s -> 10 us.
  const std::optional<double> us = board.NextConsumptionUs(30);
  ASSERT_TRUE(us.has_value());
  EXPECT_DOUBLE_EQ(*us, 10.0);
  // The current position itself is 0 pages away.
  const std::optional<double> at = board.NextConsumptionUs(20);
  ASSERT_TRUE(at.has_value());
  EXPECT_DOUBLE_EQ(*at, 0.0);
}

TEST(ScanPositionBoardTest, WrapLegCountsBothSegments) {
  ScanPositionBoard board;
  board.Upsert(Traj(1, /*position=*/20, /*speed_pps=*/1e6, 0, 100, 10));
  // Page 5 is on the wrap leg: (100 - 20) forward + 5 from range_first =
  // 85 pages -> 85 us.
  const std::optional<double> us = board.NextConsumptionUs(5);
  ASSERT_TRUE(us.has_value());
  EXPECT_DOUBLE_EQ(*us, 85.0);
}

TEST(ScanPositionBoardTest, PreWrapDeadZones) {
  ScanPositionBoard board;
  board.Upsert(Traj(1, /*position=*/20, /*speed_pps=*/1e6, 0, 100, 10));
  // Between start_page and position: already consumed this cycle, and the
  // scan finishes at start_page — never read again.
  EXPECT_FALSE(board.NextConsumptionUs(15).has_value());
  // At/after range_end: outside the scan's range entirely.
  EXPECT_FALSE(board.NextConsumptionUs(100).has_value());
  EXPECT_FALSE(board.NextConsumptionUs(500).has_value());
  // start_page itself is where the scan STOPS: not consumed again.
  EXPECT_FALSE(board.NextConsumptionUs(10).has_value());
}

TEST(ScanPositionBoardTest, PostWrapOnlyTailRemains) {
  ScanPositionBoard board;
  // Started at 50, wrapped, now at 5: only [5, 50) remains.
  board.Upsert(Traj(1, /*position=*/5, /*speed_pps=*/1e6, 0, 100, 50));
  const std::optional<double> near = board.NextConsumptionUs(7);
  ASSERT_TRUE(near.has_value());
  EXPECT_DOUBLE_EQ(*near, 2.0);
  // Beyond the finish point: dead, even though it is inside the range —
  // the scan already covered [50, 100) before wrapping.
  EXPECT_FALSE(board.NextConsumptionUs(50).has_value());
  EXPECT_FALSE(board.NextConsumptionUs(80).has_value());
}

TEST(ScanPositionBoardTest, FullRangeScanStartingAtRangeFirst) {
  ScanPositionBoard board;
  // start_page == range_first == position: the whole range is ahead and
  // there is no wrap leg.
  board.Upsert(Traj(1, /*position=*/0, /*speed_pps=*/1e6, 0, 100, 0));
  ASSERT_TRUE(board.NextConsumptionUs(99).has_value());
  EXPECT_DOUBLE_EQ(*board.NextConsumptionUs(99), 99.0);
  EXPECT_FALSE(board.NextConsumptionUs(100).has_value());
}

TEST(ScanPositionBoardTest, SoonestOfSeveralScansWins) {
  ScanPositionBoard board;
  // Scan 1 is 50 pages away from page 60; scan 2 only 10.
  board.Upsert(Traj(1, /*position=*/10, /*speed_pps=*/1e6, 0, 100, 10));
  board.Upsert(Traj(2, /*position=*/50, /*speed_pps=*/1e6, 0, 100, 50));
  const std::optional<double> us = board.NextConsumptionUs(60);
  ASSERT_TRUE(us.has_value());
  EXPECT_DOUBLE_EQ(*us, 10.0);
  // A slower-but-closer scan can still lose: drop scan 2 to 1 page/s and
  // scan 1's 50-page / 1e6-pps path (50 us) beats 10 pages / 1 pps (1e7 us).
  board.Upsert(Traj(2, /*position=*/50, /*speed_pps=*/1.0, 0, 100, 50));
  const std::optional<double> after = board.NextConsumptionUs(60);
  ASSERT_TRUE(after.has_value());
  EXPECT_DOUBLE_EQ(*after, 50.0);
}

TEST(ScanPositionBoardTest, ZeroSpeedClampedNotDivByZero) {
  ScanPositionBoard board;
  board.Upsert(Traj(1, /*position=*/0, /*speed_pps=*/0.0, 0, 100, 0));
  const std::optional<double> us = board.NextConsumptionUs(10);
  ASSERT_TRUE(us.has_value());
  // Clamped to 1e-9 pages/s: finite, astronomically far, and stable.
  EXPECT_DOUBLE_EQ(*us, 10.0 / 1e-9 * 1e6);
}

TEST(ScanPositionBoardTest, UpsertRefreshesAndEraseRemoves) {
  ScanPositionBoard board;
  board.Upsert(Traj(1, /*position=*/20, /*speed_pps=*/1e6, 0, 100, 10));
  EXPECT_EQ(board.size(), 1u);
  // Refresh under the same id: position advances, size does not.
  board.Upsert(Traj(1, /*position=*/40, /*speed_pps=*/1e6, 0, 100, 10));
  EXPECT_EQ(board.size(), 1u);
  ASSERT_TRUE(board.NextConsumptionUs(50).has_value());
  EXPECT_DOUBLE_EQ(*board.NextConsumptionUs(50), 10.0);
  board.Erase(1);
  EXPECT_EQ(board.size(), 0u);
  EXPECT_FALSE(board.NextConsumptionUs(50).has_value());
  // Erasing an unknown id is a no-op, not an error.
  board.Erase(99);
  EXPECT_EQ(board.size(), 0u);
}

// Writers continuously publish/refresh/erase trajectories while readers
// hammer NextConsumptionUs/size — the PBM deployment shape (SSM hooks
// publish under table latches, per-partition replacers read at eviction
// time). Run under TSan via the tsan preset; every value a reader sees
// must be a complete published trajectory, never a torn one.
TEST(ScanPositionBoardTest, ConcurrentPublishReadHammer) {
  ScanPositionBoard board;
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kIters = 4000;
  constexpr uint64_t kRange = 1000;
  testutil::ConcurrencyWitness witness;

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&board, &witness, w] {
      witness.Enter();
      const uint64_t base_id = static_cast<uint64_t>(w) * 1000 + 1;
      for (int i = 0; i < kIters; ++i) {
        const uint64_t id = base_id + static_cast<uint64_t>(i % 3);
        const uint64_t pos = static_cast<uint64_t>(i) % kRange;
        board.Upsert({id, pos, 1e6, 0, kRange, /*start_page=*/0});
        if (i % 7 == 0) board.Erase(id);
      }
      witness.Exit();
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&board, &witness, r] {
      witness.Enter();
      for (int i = 0; i < kIters; ++i) {
        const uint64_t page = static_cast<uint64_t>((i * 13 + r) %
                                                    static_cast<int>(kRange));
        const std::optional<double> us = board.NextConsumptionUs(page);
        if (us.has_value()) {
          // Any prediction must be finite and non-negative: a torn
          // trajectory could yield a negative page distance cast huge.
          EXPECT_GE(*us, 0.0);
          EXPECT_LE(*us, static_cast<double>(kRange) / 1e-9 * 1e6);
        }
        (void)board.size();
      }
      witness.Exit();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(testutil::OverlapObservedOrSingleCoreNoted(
      "scan-position-board hammer", witness.max_concurrent()));

  // Quiesced: the board still answers deterministically.
  board.Upsert(Traj(7, /*position=*/0, /*speed_pps=*/1e6, 0, kRange, 0));
  ASSERT_TRUE(board.NextConsumptionUs(1).has_value());
}

}  // namespace
}  // namespace scanshare::buffer
