#include "ssm/scan_sharing_manager.h"

#include <gtest/gtest.h>

#include <vector>

namespace scanshare::ssm {
namespace {

using buffer::PagePriority;

SsmOptions TestOptions() {
  SsmOptions o;
  o.bufferpool_pages = 128;
  o.prefetch_extent_pages = 16;  // Throttle threshold 32.
  o.max_wait_per_update = 1'000'000'000;
  return o;
}

ScanDescriptor Desc(uint32_t table = 1, sim::PageId first = 0,
                    sim::PageId end = 1024) {
  ScanDescriptor d;
  d.table_id = table;
  d.table_first = first;
  d.table_end = end;
  d.range_first = first;
  d.range_end = end;
  d.estimated_pages = end - first;
  d.estimated_duration = sim::Seconds(10);  // 102.4 pages/s estimate.
  return d;
}

TEST(SsmTest, FirstScanStartsAtRangeBegin) {
  ScanSharingManager ssm(TestOptions());
  auto start = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(start.ok());
  EXPECT_EQ(start->start_page, 0u);
  EXPECT_EQ(start->joined_scan, kInvalidScanId);
  EXPECT_EQ(ssm.ActiveScanCount(), 1u);
}

TEST(SsmTest, DescriptorValidation) {
  ScanSharingManager ssm(TestOptions());
  ScanDescriptor d = Desc();
  d.table_end = d.table_first;  // Empty table.
  EXPECT_FALSE(ssm.StartScan(d, 0).ok());

  d = Desc();
  d.range_end = d.table_end + 1;  // Range outside table.
  EXPECT_FALSE(ssm.StartScan(d, 0).ok());

  d = Desc();
  d.estimated_pages = 0;
  EXPECT_FALSE(ssm.StartScan(d, 0).ok());

  d = Desc();
  d.estimated_duration = 0;
  EXPECT_FALSE(ssm.StartScan(d, 0).ok());
}

TEST(SsmTest, InconsistentTableSpanRejected) {
  ScanSharingManager ssm(TestOptions());
  ASSERT_TRUE(ssm.StartScan(Desc(1, 0, 1024), 0).ok());
  EXPECT_FALSE(ssm.StartScan(Desc(1, 0, 2048), 0).ok());
}

TEST(SsmTest, SecondScanJoinsFirst) {
  ScanSharingManager ssm(TestOptions());
  auto first = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(first.ok());
  // First scan has progressed to page 256.
  ASSERT_TRUE(ssm.UpdateLocation(first->id, 256, 256, sim::Seconds(2)).ok());

  auto second = ssm.StartScan(Desc(), sim::Seconds(2));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->joined_scan, first->id);
  EXPECT_EQ(second->start_page, 256u);
  EXPECT_EQ(ssm.stats().scans_joined, 1u);
}

TEST(SsmTest, JoinedScansFormOneGroup) {
  ScanSharingManager ssm(TestOptions());
  auto a = ssm.StartScan(Desc(), 0);
  auto b = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok() && b.ok());
  auto groups = ssm.GroupsForTable(1);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 2u);
}

TEST(SsmTest, DistantScansFormSeparateGroups) {
  SsmOptions o = TestOptions();
  o.enable_smart_placement = false;  // Force both to start at 0...
  ScanSharingManager ssm(o);
  auto a = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  // ...then move A far beyond the budget.
  ASSERT_TRUE(ssm.UpdateLocation(a->id, 600, 600, sim::Seconds(3)).ok());
  auto b = ssm.StartScan(Desc(), sim::Seconds(3));
  ASSERT_TRUE(b.ok());
  auto groups = ssm.GroupsForTable(1);
  ASSERT_EQ(groups.size(), 2u);  // 600 apart > 128-page budget.
}

TEST(SsmTest, UpdateUnknownScanFails) {
  ScanSharingManager ssm(TestOptions());
  EXPECT_EQ(ssm.UpdateLocation(99, 0, 0, 0).status().code(),
            Status::Code::kNotFound);
}

TEST(SsmTest, UpdatePositionOffTableFails) {
  ScanSharingManager ssm(TestOptions());
  auto a = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(ssm.UpdateLocation(a->id, 5000, 10, 1).status().code(),
            Status::Code::kInvalidArgument);
}

TEST(SsmTest, SpeedTracksMeasuredProgress) {
  ScanSharingManager ssm(TestOptions());
  auto a = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  // 200 pages in 1 second -> 200 pps.
  ASSERT_TRUE(ssm.UpdateLocation(a->id, 200, 200, sim::Seconds(1)).ok());
  auto state = ssm.GetScanState(a->id);
  ASSERT_TRUE(state.ok());
  EXPECT_NEAR(state->speed_pps, 200.0, 1e-9);
  // 50 more pages in the next second -> windowed speed 50 pps.
  ASSERT_TRUE(ssm.UpdateLocation(a->id, 250, 250, sim::Seconds(2)).ok());
  state = ssm.GetScanState(a->id);
  EXPECT_NEAR(state->speed_pps, 50.0, 1e-9);
}

TEST(SsmTest, LeaderThrottledWhenGroupStretches) {
  ScanSharingManager ssm(TestOptions());
  auto a = ssm.StartScan(Desc(), 0);
  auto b = ssm.StartScan(Desc(), 0);  // Joins A at page 0.
  ASSERT_TRUE(a.ok() && b.ok());
  // B crawls, A sprints: A becomes leader with a 100-page gap.
  ASSERT_TRUE(ssm.UpdateLocation(b->id, 10, 10, sim::Seconds(1)).ok());
  auto update = ssm.UpdateLocation(a->id, 110, 110, sim::Seconds(1));
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(update->is_leader);
  EXPECT_EQ(update->gap_pages, 100u);
  EXPECT_GT(update->wait, 0u);
  EXPECT_EQ(ssm.stats().throttle_events, 1u);
  EXPECT_GT(ssm.stats().total_wait, 0u);
}

TEST(SsmTest, TrailerAdvisedLowLeaderHigh) {
  ScanSharingManager ssm(TestOptions());
  auto a = ssm.StartScan(Desc(), 0);
  auto b = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(ssm.UpdateLocation(b->id, 10, 10, sim::Seconds(1)).ok());
  auto leader_update = ssm.UpdateLocation(a->id, 50, 50, sim::Seconds(1));
  ASSERT_TRUE(leader_update.ok());
  EXPECT_EQ(leader_update->priority, PagePriority::kHigh);
  auto trailer_update = ssm.UpdateLocation(b->id, 11, 11, sim::Seconds(1) + 1);
  ASSERT_TRUE(trailer_update.ok());
  EXPECT_EQ(trailer_update->priority, PagePriority::kLow);

  EXPECT_EQ(*ssm.AdvisePriority(a->id), PagePriority::kHigh);
  EXPECT_EQ(*ssm.AdvisePriority(b->id), PagePriority::kLow);
}

TEST(SsmTest, FairnessCapStopsThrottling) {
  SsmOptions o = TestOptions();
  o.fairness_cap = 0.8;
  ScanSharingManager ssm(o);
  ScanDescriptor d = Desc();
  d.estimated_duration = sim::Seconds(1);  // Cap = 0.8 s of waits.
  auto a = ssm.StartScan(d, 0);
  auto b = ssm.StartScan(d, 0);
  ASSERT_TRUE(a.ok() && b.ok());

  // Trailer at 1 pps; repeatedly stretch the leader to rack up waits.
  ASSERT_TRUE(ssm.UpdateLocation(b->id, 1, 1, sim::Seconds(1)).ok());
  sim::Micros total_wait = 0;
  bool capped_seen = false;
  for (int i = 0; i < 50; ++i) {
    // Keep the gap under the 128-page grouping budget but over the
    // 32-page throttle threshold.
    auto u = ssm.UpdateLocation(a->id, 100 + i, 100 + i,
                                sim::Seconds(1) + i + 1);
    ASSERT_TRUE(u.ok());
    total_wait += u->wait;
    if (u->wait == 0) {
      capped_seen = true;
      break;
    }
  }
  EXPECT_TRUE(capped_seen);
  auto state = ssm.GetScanState(a->id);
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state->throttling_exhausted);
  // Once exhausted, no further waits ever.
  auto u = ssm.UpdateLocation(a->id, 500, 500, sim::Seconds(60));
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->wait, 0u);
}

TEST(SsmTest, EndScanRemovesAndRecordsPosition) {
  ScanSharingManager ssm(TestOptions());
  auto a = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(ssm.UpdateLocation(a->id, 768, 768, sim::Seconds(4)).ok());
  ASSERT_TRUE(ssm.EndScan(a->id, sim::Seconds(5)).ok());
  EXPECT_EQ(ssm.ActiveScanCount(), 0u);
  EXPECT_EQ(ssm.GetScanState(a->id).status().code(), Status::Code::kNotFound);

  // The paper's special case: the next scan starts at the finished scan's
  // last position to harvest leftover buffer pages.
  auto b = ssm.StartScan(Desc(), sim::Seconds(6));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->start_page, 768u);
}

TEST(SsmTest, EndScanTwiceFails) {
  ScanSharingManager ssm(TestOptions());
  auto a = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(ssm.EndScan(a->id, 1).ok());
  EXPECT_EQ(ssm.EndScan(a->id, 2).code(), Status::Code::kNotFound);
}

TEST(SsmTest, ScansOnDifferentTablesNeverGroup) {
  ScanSharingManager ssm(TestOptions());
  auto a = ssm.StartScan(Desc(1), 0);
  auto b = ssm.StartScan(Desc(2), 0);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(b->joined_scan, kInvalidScanId);
  EXPECT_EQ(ssm.GroupsForTable(1).size(), 1u);
  EXPECT_EQ(ssm.GroupsForTable(2).size(), 1u);
}

TEST(SsmTest, DisabledManagerPlacesAtRangeBeginAndNeverThrottles) {
  SsmOptions o = TestOptions();
  o.enabled = false;
  ScanSharingManager ssm(o);
  auto a = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(ssm.UpdateLocation(a->id, 512, 512, sim::Seconds(2)).ok());
  auto b = ssm.StartScan(Desc(), sim::Seconds(2));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->start_page, 0u);
  EXPECT_EQ(b->joined_scan, kInvalidScanId);

  ASSERT_TRUE(ssm.UpdateLocation(b->id, 1, 1, sim::Seconds(2) + 1).ok());
  auto u = ssm.UpdateLocation(a->id, 700, 700, sim::Seconds(3));
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->wait, 0u);
  EXPECT_EQ(u->priority, PagePriority::kNormal);
  EXPECT_EQ(*ssm.AdvisePriority(a->id), PagePriority::kNormal);
}

TEST(SsmTest, StatsCountCalls) {
  ScanSharingManager ssm(TestOptions());
  auto a = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(ssm.UpdateLocation(a->id, 16, 16, 1000).ok());
  ASSERT_TRUE(ssm.UpdateLocation(a->id, 32, 32, 2000).ok());
  ASSERT_TRUE(ssm.EndScan(a->id, 3000).ok());
  EXPECT_EQ(ssm.stats().scans_started, 1u);
  EXPECT_EQ(ssm.stats().updates, 2u);
  EXPECT_EQ(ssm.stats().scans_ended, 1u);
}

TEST(SsmTest, RegroupIntervalHonoured) {
  SsmOptions o = TestOptions();
  o.regroup_interval_updates = 4;
  ScanSharingManager ssm(o);
  auto a = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  const uint64_t after_start = ssm.stats().regroups;
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(ssm.UpdateLocation(a->id, 16 * i, 16 * i, 1000 * i).ok());
  }
  EXPECT_EQ(ssm.stats().regroups, after_start);  // Not yet.
  ASSERT_TRUE(ssm.UpdateLocation(a->id, 64, 64, 4000).ok());
  EXPECT_EQ(ssm.stats().regroups, after_start + 1);
}

TEST(SsmTest, PartialRangeScanJoinsOverlappingScanOnly) {
  ScanSharingManager ssm(TestOptions());
  auto full = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(ssm.UpdateLocation(full->id, 100, 100, sim::Seconds(1)).ok());

  // New scan covers [512, 1024): the ongoing scan at 100 is outside.
  ScanDescriptor d = Desc();
  d.range_first = 512;
  d.range_end = 1024;
  d.estimated_pages = 512;
  auto partial = ssm.StartScan(d, sim::Seconds(1));
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->joined_scan, kInvalidScanId);
  EXPECT_EQ(partial->start_page, 512u);
}

// Satellite S3: location updates landing at the same virtual timestamp must
// not lose the pages they report. The original estimator overwrote the
// window baseline on every update, so pages reported with dt == 0 were
// never counted by any window.
TEST(SsmTest, ZeroDtUpdatesAccumulateIntoNextSpeedWindow) {
  ScanSharingManager ssm(TestOptions());
  auto scan = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(scan.ok());

  ASSERT_TRUE(ssm.UpdateLocation(scan->id, 100, 100, sim::Seconds(1)).ok());
  auto st = ssm.GetScanState(scan->id);
  ASSERT_TRUE(st.ok());
  EXPECT_DOUBLE_EQ(st->speed_pps, 100.0);

  // Same timestamp: 100 more pages, no time. The window must stay open.
  ASSERT_TRUE(ssm.UpdateLocation(scan->id, 200, 200, sim::Seconds(1)).ok());
  st = ssm.GetScanState(scan->id);
  ASSERT_TRUE(st.ok());
  EXPECT_DOUBLE_EQ(st->speed_pps, 100.0);  // No new window yet.

  // One second later the window closes over *all* 200 pages since t=1s.
  ASSERT_TRUE(ssm.UpdateLocation(scan->id, 300, 300, sim::Seconds(2)).ok());
  st = ssm.GetScanState(scan->id);
  ASSERT_TRUE(st.ok());
  EXPECT_DOUBLE_EQ(st->speed_pps, 200.0);
  EXPECT_TRUE(ssm.CheckInvariants().ok());
}

// The S3 regression seen from the throttle: a trailer whose progress came
// partly through zero-dt updates must not look slower than it is, or the
// leader's wait is inflated.
TEST(SsmTest, ZeroDtTrailerSpeedDoesNotInflateLeaderWait) {
  SsmOptions o = TestOptions();
  o.enable_smart_placement = false;  // The second scan starts at page 0.
  ScanSharingManager ssm(o);

  auto leader = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(leader.ok());
  ASSERT_TRUE(
      ssm.UpdateLocation(leader->id, 100, 100, sim::Seconds(1)).ok());

  auto trailer = ssm.StartScan(Desc(), sim::Seconds(1));
  ASSERT_TRUE(trailer.ok());
  // Trailer progress: 8 pages in half a second (16 pps), then 8 more at
  // the same timestamp, then 8 more in another half second. True speed
  // over the final window: 16 pages / 0.5 s = 32 pps.
  ASSERT_TRUE(
      ssm.UpdateLocation(trailer->id, 8, 8, sim::Seconds(1) + 500'000).ok());
  ASSERT_TRUE(
      ssm.UpdateLocation(trailer->id, 16, 16, sim::Seconds(1) + 500'000).ok());
  ASSERT_TRUE(ssm.UpdateLocation(trailer->id, 24, 24, sim::Seconds(2)).ok());
  auto ts = ssm.GetScanState(trailer->id);
  ASSERT_TRUE(ts.ok());
  EXPECT_DOUBLE_EQ(ts->speed_pps, 32.0);

  // Leader at 100, trailer at 24: gap 76 > threshold 32 + hysteresis 16.
  // Wait = (76 - 32) / 32 pps = 1.375 s. The pre-fix estimator halved the
  // trailer's measured speed (16 pps) and doubled this wait.
  auto update = ssm.UpdateLocation(leader->id, 100, 100, sim::Seconds(2));
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(update->is_leader);
  EXPECT_EQ(update->wait, 1'375'000u);
  EXPECT_TRUE(ssm.CheckInvariants().ok());
}

// Satellite S4: cap_suppressions counts exactly one suppression per update
// on which the fairness cap removed a wanted wait — never two, and never
// for a clamped-but-positive grant.
TEST(SsmTest, CapSuppressionCountedOncePerSuppressedUpdate) {
  SsmOptions o = TestOptions();
  o.enable_smart_placement = false;
  ScanSharingManager ssm(o);

  // Leader with zero throttle tolerance: its fairness budget is empty from
  // the start, so every wanted wait is suppressed.
  ScanDescriptor leader_desc = Desc();
  leader_desc.throttle_tolerance = 0.0;
  auto leader = ssm.StartScan(leader_desc, 0);
  ASSERT_TRUE(leader.ok());
  ASSERT_TRUE(
      ssm.UpdateLocation(leader->id, 100, 100, sim::Seconds(1)).ok());
  auto trailer = ssm.StartScan(Desc(), sim::Seconds(1));
  ASSERT_TRUE(trailer.ok());

  EXPECT_EQ(ssm.stats().cap_suppressions, 0u);
  for (int i = 1; i <= 3; ++i) {
    auto u = ssm.UpdateLocation(leader->id, 100, 100,
                                sim::Seconds(1) + i * 1000);
    ASSERT_TRUE(u.ok());
    EXPECT_TRUE(u->is_leader);
    EXPECT_EQ(u->wait, 0u);  // Suppressed, not inserted.
    EXPECT_EQ(ssm.stats().cap_suppressions, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(ssm.stats().throttle_events, 0u);
  EXPECT_EQ(ssm.stats().total_wait, 0u);
  EXPECT_TRUE(ssm.CheckInvariants().ok());
}

TEST(SsmTest, ClampedPositiveGrantIsNotASuppression) {
  SsmOptions o = TestOptions();
  o.enable_smart_placement = false;
  ScanSharingManager ssm(o);

  // Budget of 0.8 * 0.05 * 10 s = 400 ms, below the wanted wait, so the
  // first throttle is clamped (a grant) and later ones are suppressed.
  ScanDescriptor leader_desc = Desc();
  leader_desc.throttle_tolerance = 0.05;
  auto leader = ssm.StartScan(leader_desc, 0);
  ASSERT_TRUE(leader.ok());
  ASSERT_TRUE(
      ssm.UpdateLocation(leader->id, 100, 100, sim::Seconds(1)).ok());
  auto trailer = ssm.StartScan(Desc(), sim::Seconds(1));
  ASSERT_TRUE(trailer.ok());

  auto first = ssm.UpdateLocation(leader->id, 100, 100, sim::Seconds(2));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->wait, 400'000u);  // Clamped to the remaining budget.
  EXPECT_EQ(ssm.stats().throttle_events, 1u);
  EXPECT_EQ(ssm.stats().cap_suppressions, 0u);

  auto second = ssm.UpdateLocation(leader->id, 100, 100, sim::Seconds(3));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->wait, 0u);
  EXPECT_EQ(ssm.stats().throttle_events, 1u);
  EXPECT_EQ(ssm.stats().cap_suppressions, 1u);
  EXPECT_TRUE(ssm.CheckInvariants().ok());
}

// The audit entry point accepts every state reachable through normal use.
TEST(SsmTest, InvariantsHoldThroughMixedTraffic) {
  ScanSharingManager ssm(TestOptions());
  EXPECT_TRUE(ssm.CheckInvariants().ok());
  std::vector<ScanId> ids;
  sim::Micros now = 0;
  for (int i = 0; i < 6; ++i) {
    auto s = ssm.StartScan(Desc(), now);
    ASSERT_TRUE(s.ok());
    ids.push_back(s->id);
    EXPECT_TRUE(ssm.CheckInvariants().ok()) << "after start " << i;
    now += 100'000;
  }
  for (int round = 0; round < 10; ++round) {
    for (size_t i = 0; i < ids.size(); ++i) {
      const uint64_t pages = (round + 1) * 16 + i * 3;
      ASSERT_TRUE(
          ssm.UpdateLocation(ids[i], (pages + 64 * i) % 1024, pages, now).ok());
      EXPECT_TRUE(ssm.CheckInvariants().ok())
          << "after update round " << round << " scan " << i;
      now += 50'000;
    }
  }
  while (!ids.empty()) {
    ASSERT_TRUE(ssm.EndScan(ids.back(), now).ok());
    ids.pop_back();
    EXPECT_TRUE(ssm.CheckInvariants().ok()) << ids.size() << " scans left";
    now += 10'000;
  }
  EXPECT_EQ(ssm.ActiveScanCount(), 0u);
}

}  // namespace
}  // namespace scanshare::ssm
