#include "ssm/scan_sharing_manager.h"

#include <gtest/gtest.h>

namespace scanshare::ssm {
namespace {

using buffer::PagePriority;

SsmOptions TestOptions() {
  SsmOptions o;
  o.bufferpool_pages = 128;
  o.prefetch_extent_pages = 16;  // Throttle threshold 32.
  o.max_wait_per_update = 1'000'000'000;
  return o;
}

ScanDescriptor Desc(uint32_t table = 1, sim::PageId first = 0,
                    sim::PageId end = 1024) {
  ScanDescriptor d;
  d.table_id = table;
  d.table_first = first;
  d.table_end = end;
  d.range_first = first;
  d.range_end = end;
  d.estimated_pages = end - first;
  d.estimated_duration = sim::Seconds(10);  // 102.4 pages/s estimate.
  return d;
}

TEST(SsmTest, FirstScanStartsAtRangeBegin) {
  ScanSharingManager ssm(TestOptions());
  auto start = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(start.ok());
  EXPECT_EQ(start->start_page, 0u);
  EXPECT_EQ(start->joined_scan, kInvalidScanId);
  EXPECT_EQ(ssm.ActiveScanCount(), 1u);
}

TEST(SsmTest, DescriptorValidation) {
  ScanSharingManager ssm(TestOptions());
  ScanDescriptor d = Desc();
  d.table_end = d.table_first;  // Empty table.
  EXPECT_FALSE(ssm.StartScan(d, 0).ok());

  d = Desc();
  d.range_end = d.table_end + 1;  // Range outside table.
  EXPECT_FALSE(ssm.StartScan(d, 0).ok());

  d = Desc();
  d.estimated_pages = 0;
  EXPECT_FALSE(ssm.StartScan(d, 0).ok());

  d = Desc();
  d.estimated_duration = 0;
  EXPECT_FALSE(ssm.StartScan(d, 0).ok());
}

TEST(SsmTest, InconsistentTableSpanRejected) {
  ScanSharingManager ssm(TestOptions());
  ASSERT_TRUE(ssm.StartScan(Desc(1, 0, 1024), 0).ok());
  EXPECT_FALSE(ssm.StartScan(Desc(1, 0, 2048), 0).ok());
}

TEST(SsmTest, SecondScanJoinsFirst) {
  ScanSharingManager ssm(TestOptions());
  auto first = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(first.ok());
  // First scan has progressed to page 256.
  ASSERT_TRUE(ssm.UpdateLocation(first->id, 256, 256, sim::Seconds(2)).ok());

  auto second = ssm.StartScan(Desc(), sim::Seconds(2));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->joined_scan, first->id);
  EXPECT_EQ(second->start_page, 256u);
  EXPECT_EQ(ssm.stats().scans_joined, 1u);
}

TEST(SsmTest, JoinedScansFormOneGroup) {
  ScanSharingManager ssm(TestOptions());
  auto a = ssm.StartScan(Desc(), 0);
  auto b = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok() && b.ok());
  auto groups = ssm.GroupsForTable(1);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 2u);
}

TEST(SsmTest, DistantScansFormSeparateGroups) {
  SsmOptions o = TestOptions();
  o.enable_smart_placement = false;  // Force both to start at 0...
  ScanSharingManager ssm(o);
  auto a = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  // ...then move A far beyond the budget.
  ASSERT_TRUE(ssm.UpdateLocation(a->id, 600, 600, sim::Seconds(3)).ok());
  auto b = ssm.StartScan(Desc(), sim::Seconds(3));
  ASSERT_TRUE(b.ok());
  auto groups = ssm.GroupsForTable(1);
  ASSERT_EQ(groups.size(), 2u);  // 600 apart > 128-page budget.
}

TEST(SsmTest, UpdateUnknownScanFails) {
  ScanSharingManager ssm(TestOptions());
  EXPECT_EQ(ssm.UpdateLocation(99, 0, 0, 0).status().code(),
            Status::Code::kNotFound);
}

TEST(SsmTest, UpdatePositionOffTableFails) {
  ScanSharingManager ssm(TestOptions());
  auto a = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(ssm.UpdateLocation(a->id, 5000, 10, 1).status().code(),
            Status::Code::kInvalidArgument);
}

TEST(SsmTest, SpeedTracksMeasuredProgress) {
  ScanSharingManager ssm(TestOptions());
  auto a = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  // 200 pages in 1 second -> 200 pps.
  ASSERT_TRUE(ssm.UpdateLocation(a->id, 200, 200, sim::Seconds(1)).ok());
  auto state = ssm.GetScanState(a->id);
  ASSERT_TRUE(state.ok());
  EXPECT_NEAR(state->speed_pps, 200.0, 1e-9);
  // 50 more pages in the next second -> windowed speed 50 pps.
  ASSERT_TRUE(ssm.UpdateLocation(a->id, 250, 250, sim::Seconds(2)).ok());
  state = ssm.GetScanState(a->id);
  EXPECT_NEAR(state->speed_pps, 50.0, 1e-9);
}

TEST(SsmTest, LeaderThrottledWhenGroupStretches) {
  ScanSharingManager ssm(TestOptions());
  auto a = ssm.StartScan(Desc(), 0);
  auto b = ssm.StartScan(Desc(), 0);  // Joins A at page 0.
  ASSERT_TRUE(a.ok() && b.ok());
  // B crawls, A sprints: A becomes leader with a 100-page gap.
  ASSERT_TRUE(ssm.UpdateLocation(b->id, 10, 10, sim::Seconds(1)).ok());
  auto update = ssm.UpdateLocation(a->id, 110, 110, sim::Seconds(1));
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(update->is_leader);
  EXPECT_EQ(update->gap_pages, 100u);
  EXPECT_GT(update->wait, 0u);
  EXPECT_EQ(ssm.stats().throttle_events, 1u);
  EXPECT_GT(ssm.stats().total_wait, 0u);
}

TEST(SsmTest, TrailerAdvisedLowLeaderHigh) {
  ScanSharingManager ssm(TestOptions());
  auto a = ssm.StartScan(Desc(), 0);
  auto b = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(ssm.UpdateLocation(b->id, 10, 10, sim::Seconds(1)).ok());
  auto leader_update = ssm.UpdateLocation(a->id, 50, 50, sim::Seconds(1));
  ASSERT_TRUE(leader_update.ok());
  EXPECT_EQ(leader_update->priority, PagePriority::kHigh);
  auto trailer_update = ssm.UpdateLocation(b->id, 11, 11, sim::Seconds(1) + 1);
  ASSERT_TRUE(trailer_update.ok());
  EXPECT_EQ(trailer_update->priority, PagePriority::kLow);

  EXPECT_EQ(*ssm.AdvisePriority(a->id), PagePriority::kHigh);
  EXPECT_EQ(*ssm.AdvisePriority(b->id), PagePriority::kLow);
}

TEST(SsmTest, FairnessCapStopsThrottling) {
  SsmOptions o = TestOptions();
  o.fairness_cap = 0.8;
  ScanSharingManager ssm(o);
  ScanDescriptor d = Desc();
  d.estimated_duration = sim::Seconds(1);  // Cap = 0.8 s of waits.
  auto a = ssm.StartScan(d, 0);
  auto b = ssm.StartScan(d, 0);
  ASSERT_TRUE(a.ok() && b.ok());

  // Trailer at 1 pps; repeatedly stretch the leader to rack up waits.
  ASSERT_TRUE(ssm.UpdateLocation(b->id, 1, 1, sim::Seconds(1)).ok());
  sim::Micros total_wait = 0;
  bool capped_seen = false;
  for (int i = 0; i < 50; ++i) {
    // Keep the gap under the 128-page grouping budget but over the
    // 32-page throttle threshold.
    auto u = ssm.UpdateLocation(a->id, 100 + i, 100 + i,
                                sim::Seconds(1) + i + 1);
    ASSERT_TRUE(u.ok());
    total_wait += u->wait;
    if (u->wait == 0) {
      capped_seen = true;
      break;
    }
  }
  EXPECT_TRUE(capped_seen);
  auto state = ssm.GetScanState(a->id);
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state->throttling_exhausted);
  // Once exhausted, no further waits ever.
  auto u = ssm.UpdateLocation(a->id, 500, 500, sim::Seconds(60));
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->wait, 0u);
}

TEST(SsmTest, EndScanRemovesAndRecordsPosition) {
  ScanSharingManager ssm(TestOptions());
  auto a = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(ssm.UpdateLocation(a->id, 768, 768, sim::Seconds(4)).ok());
  ASSERT_TRUE(ssm.EndScan(a->id, sim::Seconds(5)).ok());
  EXPECT_EQ(ssm.ActiveScanCount(), 0u);
  EXPECT_EQ(ssm.GetScanState(a->id).status().code(), Status::Code::kNotFound);

  // The paper's special case: the next scan starts at the finished scan's
  // last position to harvest leftover buffer pages.
  auto b = ssm.StartScan(Desc(), sim::Seconds(6));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->start_page, 768u);
}

TEST(SsmTest, EndScanTwiceFails) {
  ScanSharingManager ssm(TestOptions());
  auto a = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(ssm.EndScan(a->id, 1).ok());
  EXPECT_EQ(ssm.EndScan(a->id, 2).code(), Status::Code::kNotFound);
}

TEST(SsmTest, ScansOnDifferentTablesNeverGroup) {
  ScanSharingManager ssm(TestOptions());
  auto a = ssm.StartScan(Desc(1), 0);
  auto b = ssm.StartScan(Desc(2), 0);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(b->joined_scan, kInvalidScanId);
  EXPECT_EQ(ssm.GroupsForTable(1).size(), 1u);
  EXPECT_EQ(ssm.GroupsForTable(2).size(), 1u);
}

TEST(SsmTest, DisabledManagerPlacesAtRangeBeginAndNeverThrottles) {
  SsmOptions o = TestOptions();
  o.enabled = false;
  ScanSharingManager ssm(o);
  auto a = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(ssm.UpdateLocation(a->id, 512, 512, sim::Seconds(2)).ok());
  auto b = ssm.StartScan(Desc(), sim::Seconds(2));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->start_page, 0u);
  EXPECT_EQ(b->joined_scan, kInvalidScanId);

  ASSERT_TRUE(ssm.UpdateLocation(b->id, 1, 1, sim::Seconds(2) + 1).ok());
  auto u = ssm.UpdateLocation(a->id, 700, 700, sim::Seconds(3));
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->wait, 0u);
  EXPECT_EQ(u->priority, PagePriority::kNormal);
  EXPECT_EQ(*ssm.AdvisePriority(a->id), PagePriority::kNormal);
}

TEST(SsmTest, StatsCountCalls) {
  ScanSharingManager ssm(TestOptions());
  auto a = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(ssm.UpdateLocation(a->id, 16, 16, 1000).ok());
  ASSERT_TRUE(ssm.UpdateLocation(a->id, 32, 32, 2000).ok());
  ASSERT_TRUE(ssm.EndScan(a->id, 3000).ok());
  EXPECT_EQ(ssm.stats().scans_started, 1u);
  EXPECT_EQ(ssm.stats().updates, 2u);
  EXPECT_EQ(ssm.stats().scans_ended, 1u);
}

TEST(SsmTest, RegroupIntervalHonoured) {
  SsmOptions o = TestOptions();
  o.regroup_interval_updates = 4;
  ScanSharingManager ssm(o);
  auto a = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(a.ok());
  const uint64_t after_start = ssm.stats().regroups;
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(ssm.UpdateLocation(a->id, 16 * i, 16 * i, 1000 * i).ok());
  }
  EXPECT_EQ(ssm.stats().regroups, after_start);  // Not yet.
  ASSERT_TRUE(ssm.UpdateLocation(a->id, 64, 64, 4000).ok());
  EXPECT_EQ(ssm.stats().regroups, after_start + 1);
}

TEST(SsmTest, PartialRangeScanJoinsOverlappingScanOnly) {
  ScanSharingManager ssm(TestOptions());
  auto full = ssm.StartScan(Desc(), 0);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(ssm.UpdateLocation(full->id, 100, 100, sim::Seconds(1)).ok());

  // New scan covers [512, 1024): the ongoing scan at 100 is outside.
  ScanDescriptor d = Desc();
  d.range_first = 512;
  d.range_end = 1024;
  d.estimated_pages = 512;
  auto partial = ssm.StartScan(d, sim::Seconds(1));
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->joined_scan, kInvalidScanId);
  EXPECT_EQ(partial->start_page, 512u);
}

}  // namespace
}  // namespace scanshare::ssm
