#include "storage/schema.h"

#include <gtest/gtest.h>

namespace scanshare::storage {
namespace {

Schema TestSchema() {
  return Schema({
      Column::Int64("id"),
      Column::Double("amount"),
      Column::Char("flag", 1),
      Column::Char("name", 8),
      Column::Int64("date"),
  });
}

TEST(SchemaTest, LayoutOffsets) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_columns(), 5u);
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 8u);
  EXPECT_EQ(s.offset(2), 16u);
  EXPECT_EQ(s.offset(3), 17u);
  EXPECT_EQ(s.offset(4), 25u);
  EXPECT_EQ(s.tuple_width(), 33u);
}

TEST(SchemaTest, ColumnIndexLookup) {
  Schema s = TestSchema();
  auto idx = s.ColumnIndex("flag");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 2u);
  EXPECT_EQ(s.ColumnIndex("missing").status().code(), Status::Code::kNotFound);
}

TEST(SchemaTest, EncodeDecodeRoundTrip) {
  Schema s = TestSchema();
  std::vector<Value> row = {Value::Int64(17), Value::Double(2.25),
                            Value::Char("A"), Value::Char("widget"),
                            Value::Int64(1234)};
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(s.EncodeTuple(row, &encoded).ok());
  EXPECT_EQ(encoded.size(), s.tuple_width());

  std::vector<Value> decoded = s.DecodeTuple(encoded.data());
  ASSERT_EQ(decoded.size(), 5u);
  EXPECT_EQ(decoded[0].AsInt64(), 17);
  EXPECT_DOUBLE_EQ(decoded[1].AsDouble(), 2.25);
  EXPECT_EQ(decoded[2].AsChar(), "A");
  // Char decodes at full width, zero-padded.
  EXPECT_EQ(decoded[3].AsChar().size(), 8u);
  EXPECT_EQ(decoded[3].ToString(), "widget");
  EXPECT_EQ(decoded[4].AsInt64(), 1234);
}

TEST(SchemaTest, EncodeArityMismatch) {
  Schema s = TestSchema();
  std::vector<uint8_t> out;
  EXPECT_EQ(s.EncodeTuple({Value::Int64(1)}, &out).code(),
            Status::Code::kInvalidArgument);
}

TEST(SchemaTest, EncodeTypeMismatch) {
  Schema s = TestSchema();
  std::vector<uint8_t> out;
  std::vector<Value> row = {Value::Double(1.0), Value::Double(2.0),
                            Value::Char("A"), Value::Char("x"),
                            Value::Int64(0)};
  EXPECT_EQ(s.EncodeTuple(row, &out).code(), Status::Code::kInvalidArgument);
}

TEST(SchemaTest, EncodeRejectsOverlongChar) {
  Schema s = TestSchema();
  std::vector<uint8_t> out;
  std::vector<Value> row = {Value::Int64(1), Value::Double(2.0),
                            Value::Char("AB"),  // Width 1.
                            Value::Char("x"), Value::Int64(0)};
  EXPECT_EQ(s.EncodeTuple(row, &out).code(), Status::Code::kInvalidArgument);
}

TEST(SchemaTest, InPlaceReaders) {
  Schema s = TestSchema();
  std::vector<Value> row = {Value::Int64(-9), Value::Double(0.125),
                            Value::Char("R"), Value::Char("abc"),
                            Value::Int64(77)};
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(s.EncodeTuple(row, &encoded).ok());
  EXPECT_EQ(s.ReadInt64(encoded.data(), 0), -9);
  EXPECT_DOUBLE_EQ(s.ReadDouble(encoded.data(), 1), 0.125);
  EXPECT_EQ(s.ReadChar(encoded.data(), 2)[0], 'R');
  EXPECT_EQ(s.ReadInt64(encoded.data(), 4), 77);
}

TEST(SchemaTest, ShortCharIsZeroPadded) {
  Schema s = TestSchema();
  std::vector<Value> row = {Value::Int64(0), Value::Double(0),
                            Value::Char("A"), Value::Char("ab"),
                            Value::Int64(0)};
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(s.EncodeTuple(row, &encoded).ok());
  const char* name = s.ReadChar(encoded.data(), 3);
  EXPECT_EQ(name[0], 'a');
  EXPECT_EQ(name[1], 'b');
  for (int i = 2; i < 8; ++i) EXPECT_EQ(name[i], '\0');
}

TEST(SchemaTest, EmptySchema) {
  Schema s;
  EXPECT_EQ(s.num_columns(), 0u);
  EXPECT_EQ(s.tuple_width(), 0u);
}

}  // namespace
}  // namespace scanshare::storage
