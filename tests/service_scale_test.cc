// Scale/property stress for the scan service (DESIGN.md §16): thousands
// of admitted streams across many seeds and arrival shapes, with the
// admission conservation law, the cap/queue bounds, and the engine's own
// invariants (pool + SSM CheckInvariants, audited mid-run) asserted on
// every run — plus a wall-clock budget on the SSM's per-regroup cost at
// 10k registered scans (the adaptive-regroup fix this layer depends on).

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "service/scan_service.h"
#include "service/service_metrics.h"
#include "ssm/scan_sharing_manager.h"

namespace scanshare {
namespace {

using service::ServiceOptions;
using service::ServiceResult;
using service::ServiceTable;

// Small tables keep per-job work tiny so job COUNT, not data volume, is
// what the suite scales in.
service::WorkloadSpec SmallWorkload() {
  service::WorkloadSpec w;
  w.num_tables = 6;
  w.mdc_every = 3;
  w.pages_per_table = 48;
  w.zipf_theta = 0.99;
  w.seed = 7;
  return w;
}

struct ServiceDb {
  std::unique_ptr<exec::Database> db;
  std::vector<ServiceTable> tables;
};

ServiceDb MakeServiceDb(const service::WorkloadSpec& spec) {
  ServiceDb out;
  out.db = std::make_unique<exec::Database>();
  auto tables = service::BuildServiceTables(out.db->catalog(), spec);
  EXPECT_TRUE(tables.ok()) << tables.status().ToString();
  out.tables = *std::move(tables);
  return out;
}

// The properties every service run must satisfy, regardless of arrival
// shape, seed, or admission pressure.
void CheckServiceInvariants(const ServiceOptions& options,
                            const ServiceResult& result) {
  const service::AdmissionStats& a = result.admission;
  // Conservation: every arrival got exactly one decision.
  EXPECT_EQ(a.arrived, a.admitted + a.queued + a.shed);
  EXPECT_EQ(a.arrived, result.jobs.size());
  EXPECT_EQ(a.shed, a.shed_global_cap + a.shed_table_cap);
  // The run ended, so everything queued was eventually admitted and
  // everything admitted was released.
  EXPECT_EQ(a.admitted_from_queue, a.queued);
  EXPECT_EQ(a.released, a.admitted + a.admitted_from_queue);
  // Bounds.
  EXPECT_LE(a.max_running, options.admission.global_cap);
  EXPECT_LE(a.max_queue_depth, options.admission.queue_bound);
  // Latency accounting covers exactly the completed jobs.
  EXPECT_EQ(result.sojourn.count, a.released);
  EXPECT_EQ(result.queue_wait.count, a.released);

  uint64_t completed = 0;
  for (const service::JobRecord& job : result.jobs) {
    if (job.shed) {
      EXPECT_EQ(job.end, 0u) << "job " << job.id;
      continue;
    }
    ++completed;
    EXPECT_GE(job.admit_at, job.arrival) << "job " << job.id;
    EXPECT_GE(job.end, job.admit_at) << "job " << job.id;
    EXPECT_EQ(job.from_queue, job.admit_at != job.arrival)
        << "job " << job.id;
    EXPECT_GT(job.output.rows_scanned, 0u) << "job " << job.id;
    EXPECT_LE(job.end, result.makespan) << "job " << job.id;
  }
  EXPECT_EQ(completed, a.released);
  // Nearest-rank quantiles are ordered by construction.
  EXPECT_LE(result.sojourn.p50, result.sojourn.p99);
  EXPECT_LE(result.sojourn.p99, result.sojourn.p999);
  EXPECT_LE(result.sojourn.p999, result.sojourn.max);
}

// 64 seeds x alternating arrival kinds, moderate load each: the admission
// layer sees every mix of immediate admits, queue waits, and sheds.
TEST(ServiceScaleTest, SixtyFourSeedSweepKeepsInvariants) {
  ServiceDb sdb = MakeServiceDb(SmallWorkload());
  constexpr service::ArrivalKind kKinds[] = {
      service::ArrivalKind::kFixedRate, service::ArrivalKind::kPoissonBurst,
      service::ArrivalKind::kDiurnal, service::ArrivalKind::kClosedLoop};

  service::ScanService svc(sdb.db.get());
  uint64_t total_shed = 0;
  uint64_t total_queued = 0;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    ServiceOptions options;
    options.workload = SmallWorkload();
    options.arrival.kind = kKinds[seed % 4];
    options.arrival.seed = seed;
    options.arrival.num_jobs = 150;
    options.arrival.rate_per_sec = 400.0;  // Well above capacity: pressure.
    options.arrival.clients = 32;
    options.arrival.think_time = 20'000;
    options.admission.global_cap = 24;
    options.admission.per_table_cap = 8;
    options.admission.queue_bound = 32;
    options.run.buffer.num_frames = 128;
    options.audit_every_n_steps = 64;  // SSM/pool/admission audits mid-run.

    auto result = svc.Run(options, sdb.tables);
    ASSERT_TRUE(result.ok()) << "seed " << seed << ": "
                             << result.status().ToString();
    CheckServiceInvariants(options, *result);
    total_shed += result->admission.shed;
    total_queued += result->admission.queued;
  }
  // The sweep must actually have exercised the queue and the shed path —
  // a sweep where every job admits immediately proves nothing.
  EXPECT_GT(total_queued, 0u);
  EXPECT_GT(total_shed, 0u);
}

// The acceptance-scale run: 10k arrivals through one service run, high
// concurrency caps so the SSM carries hundreds of simultaneous scans,
// adaptive regroup on (the service-scale configuration), invariants
// audited throughout.
TEST(ServiceScaleTest, TenThousandStreamsRunCleanly) {
  ServiceDb sdb = MakeServiceDb(SmallWorkload());
  ServiceOptions options;
  options.workload = SmallWorkload();
  options.arrival.kind = service::ArrivalKind::kPoissonBurst;
  options.arrival.seed = 11;
  options.arrival.num_jobs = 10'000;
  options.arrival.rate_per_sec = 2'000.0;
  options.arrival.burst_factor = 6.0;
  options.admission.global_cap = 384;
  options.admission.per_table_cap = 128;
  options.admission.queue_bound = 4'096;
  options.run.buffer.num_frames = 256;
  options.run.ssm.adaptive_regroup = true;
  options.audit_every_n_steps = 1'024;

  service::ScanService svc(sdb.db.get());
  auto result = svc.Run(options, sdb.tables);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  CheckServiceInvariants(options, *result);
  EXPECT_EQ(result->admission.arrived, 10'000u);
  // At these caps the burst must drive real queueing and real sharing.
  EXPECT_GT(result->admission.queued, 0u);
  EXPECT_GT(result->admission.max_running, 100u);
  EXPECT_GT(result->ssm.scans_joined, 0u);

  // The metrics bridge sees the same numbers the result does.
  const auto samples = service::CollectServiceMetrics(*result);
  bool saw_arrived = false;
  for (const obs::MetricSample& s : samples) {
    if (s.name == "service.arrived") {
      saw_arrived = true;
      EXPECT_EQ(s.counter, result->admission.arrived);
    }
  }
  EXPECT_TRUE(saw_arrived);
}

// Per-regroup wall budget at 10k registered scans. With adaptive_regroup
// the full Fig.-14 rebuild runs once per ~active/8 updates, so a rebuild
// over 10k scans must stay cheap in absolute terms — this pins the
// superlinear-total-regroup-work fix at the scale the service needs.
// The budget is deliberately generous (CI machines vary); the pre-fix
// behaviour it guards against was a rebuild per update, orders of
// magnitude over it.
TEST(ServiceScaleTest, RegroupWallTimeBoundedAtTenThousandScans) {
  ssm::SsmOptions options;
  options.bufferpool_pages = 4'096;
  options.prefetch_extent_pages = 16;
  options.adaptive_regroup = true;
  options.enable_throttling = false;  // Pure grouping; no throttle waits.
  ssm::ScanSharingManager ssm(options);

  constexpr size_t kScans = 10'000;
  constexpr uint64_t kTablePages = 1 << 20;
  ssm::ScanDescriptor d;
  d.table_id = 1;
  d.table_first = 0;
  d.table_end = kTablePages;
  d.range_first = 0;
  d.range_end = kTablePages;
  d.estimated_pages = kTablePages;
  d.estimated_duration = sim::Seconds(100);

  std::vector<ssm::ScanId> ids;
  ids.reserve(kScans);
  sim::Micros now = 0;
  for (size_t i = 0; i < kScans; ++i) {
    auto start = ssm.StartScan(d, ++now);
    ASSERT_TRUE(start.ok());
    ids.push_back(start->id);
  }
  ASSERT_EQ(ssm.ActiveScanCount(), kScans);

  // Drive enough updates to trigger several full rebuilds at 10k active
  // scans (effective interval = 10'000 / 8 = 1250 updates).
  const auto t0 = std::chrono::steady_clock::now();
  uint64_t position = 0;
  for (int round = 0; round < 4; ++round) {
    for (size_t i = 0; i < 1'300; ++i) {
      ++position;
      auto update = ssm.UpdateLocation(ids[i], position % kTablePages,
                                       position, ++now);
      ASSERT_TRUE(update.ok());
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  const uint64_t regroups = ssm.stats().regroups;
  ASSERT_GT(regroups, 0u) << "update volume never triggered a rebuild";

  const double per_regroup_ms =
      std::chrono::duration<double, std::milli>(elapsed).count() /
      static_cast<double>(regroups);
  // A 10k-scan rebuild is two sorts plus a DSU pass — single-digit
  // milliseconds on any host this suite runs on; 250 ms catches a
  // complexity regression without flaking on slow CI.
  EXPECT_LT(per_regroup_ms, 250.0)
      << regroups << " regroups took " << per_regroup_ms << " ms each";

  for (const ssm::ScanId id : ids) {
    ASSERT_TRUE(ssm.EndScan(id, ++now).ok());
  }
  EXPECT_EQ(ssm.ActiveScanCount(), 0u);
}

}  // namespace
}  // namespace scanshare
