// End-to-end checks of the paper's headline claims on scaled-down
// workloads: scan sharing reduces physical reads, seeks, and end-to-end
// time for concurrent scans of the same table; results stay correct; the
// mechanism degrades gracefully when its pieces are disabled.

#include <gtest/gtest.h>

#include <map>

#include "metrics/report.h"
#include "testutil.h"
#include "workload/queries.h"

namespace scanshare {
namespace {

using exec::Database;
using exec::RunConfig;
using exec::RunResult;
using exec::ScanMode;
using exec::StreamSpec;

class SharingIntegrationTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kTablePages = 256;

  static Database* db() {
    // One shared database across tests: generation is the expensive part
    // and Run() always starts cold.
    return testutil::SharedLineitemDb(kTablePages, 2024);
  }

  static RunConfig Config(ScanMode mode) {
    // The paper's ratio: buffer pool ~5 % of the database.
    return testutil::MakeRunConfig(mode, db()->FramesForFraction(0.05));
  }

  static std::pair<RunResult, RunResult> RunBoth(
      const std::vector<StreamSpec>& streams) {
    auto base = db()->Run(Config(ScanMode::kBaseline), streams);
    EXPECT_TRUE(base.ok()) << base.status().ToString();
    auto shared = db()->Run(Config(ScanMode::kShared), streams);
    EXPECT_TRUE(shared.ok()) << shared.status().ToString();
    return {*base, *shared};
  }
};

TEST_F(SharingIntegrationTest, StaggeredQ6ReadsDropSubstantially) {
  auto streams =
      workload::MakeStaggeredStreams(workload::MakeQ6Like("lineitem"), 3,
                                     sim::Millis(30));
  auto [base, shared] = RunBoth(streams);

  // Three overlapping identical scans: the baseline reads the table ~3x;
  // sharing should get substantially closer to 1x.
  EXPECT_LT(shared.disk.pages_read, base.disk.pages_read * 6 / 10);
  EXPECT_LT(shared.disk.seeks, base.disk.seeks);
  EXPECT_LE(shared.makespan, base.makespan);
}

TEST_F(SharingIntegrationTest, StaggeredQ6EveryRunGains) {
  auto streams =
      workload::MakeStaggeredStreams(workload::MakeQ6Like("lineitem"), 3,
                                     sim::Millis(30));
  auto [base, shared] = RunBoth(streams);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_LE(shared.streams[i].Elapsed(), base.streams[i].Elapsed() * 101 / 100)
        << "stream " << i;
  }
}

TEST_F(SharingIntegrationTest, StaggeredQ6IoWaitShrinks) {
  auto streams =
      workload::MakeStaggeredStreams(workload::MakeQ6Like("lineitem"), 3,
                                     sim::Millis(30));
  auto [base, shared] = RunBoth(streams);
  auto base_cpu = metrics::ComputeCpuBreakdown(base);
  auto shared_cpu = metrics::ComputeCpuBreakdown(shared);
  // The paper's Figure-15 shape: I/O wait share drops, user share grows.
  EXPECT_LT(shared_cpu.iowait, base_cpu.iowait * 0.9);
  EXPECT_GT(shared_cpu.user, base_cpu.user);
}

TEST_F(SharingIntegrationTest, CpuBoundQ1StillImprovesSlightly) {
  auto streams =
      workload::MakeStaggeredStreams(workload::MakeQ1Like("lineitem"), 3,
                                     sim::Millis(30));
  auto [base, shared] = RunBoth(streams);
  // Reads must drop; elapsed time may barely move (CPU-bound), but must
  // not regress materially — the paper's Figure-16 observation.
  EXPECT_LT(shared.disk.pages_read, base.disk.pages_read);
  EXPECT_LE(shared.makespan, base.makespan * 102 / 100);
}

TEST_F(SharingIntegrationTest, ThroughputRunImprovesEndToEnd) {
  auto streams = workload::MakeThroughputStreams(
      workload::DefaultQueryMix("lineitem"), 4, 6, 99);
  auto [base, shared] = RunBoth(streams);

  auto gains = metrics::ComputeThroughputGains(base, shared);
  EXPECT_GT(gains.end_to_end, 0.05) << "end-to-end gain too small";
  EXPECT_GT(gains.disk_read, 0.15) << "read gain too small";
  EXPECT_GT(gains.disk_seek, 0.15) << "seek gain too small";
}

TEST_F(SharingIntegrationTest, ThroughputRunNoQueryTemplateRegresses) {
  auto streams = workload::MakeThroughputStreams(
      workload::DefaultQueryMix("lineitem"), 4, 6, 99);
  auto [base, shared] = RunBoth(streams);
  auto base_avg = metrics::PerQueryAverages(base);
  auto shared_avg = metrics::PerQueryAverages(shared);
  // The paper's fairness result (Figure 20): throttling is distributed so
  // no query ends up slower overall. The paper's 21 queries are all
  // full-table scans; our full-scan templates must match that claim (10 %
  // noise allowance). Short hotspot range scans (QR1: 1/7 of the table)
  // are allowed to donate up to their fairness-cap share of time to the
  // group, so their bound is looser.
  for (const auto& [name, b] : base_avg) {
    const bool full_scan = name != "QR1" && name != "QR2";
    EXPECT_LE(shared_avg[name], b * (full_scan ? 1.10 : 1.60)) << name;
  }
}

TEST_F(SharingIntegrationTest, ThroughputRunStreamsGainEvenly) {
  auto streams = workload::MakeThroughputStreams(
      workload::DefaultQueryMix("lineitem"), 4, 6, 99);
  auto [base, shared] = RunBoth(streams);
  auto base_streams = metrics::PerStreamElapsed(base);
  auto shared_streams = metrics::PerStreamElapsed(shared);
  // Figure-19 shape: every stream gains (none sacrificed for the others).
  for (size_t i = 0; i < base_streams.size(); ++i) {
    EXPECT_LT(shared_streams[i], base_streams[i] * 105 / 100) << "stream " << i;
  }
}

TEST_F(SharingIntegrationTest, SingleStreamOverheadBelowOnePercent) {
  // The paper's first experiment: with no concurrency there is nothing to
  // share, and the SSM machinery must cost < 1 % end-to-end.
  StreamSpec s;
  for (const auto& q : workload::DefaultQueryMix("lineitem")) {
    s.queries.push_back(q);
  }
  auto [base, shared] = RunBoth({s});
  const double ratio = static_cast<double>(shared.makespan) /
                       static_cast<double>(base.makespan);
  EXPECT_LT(ratio, 1.01);
  EXPECT_GT(ratio, 0.80);  // And it must not be mysteriously faster either.
}

TEST_F(SharingIntegrationTest, ThrottlingKeepsScansTogether) {
  // A fast scan (Q6) and a slow scan (Q1) started together: with
  // throttling the fast one is held back and they share; without it they
  // drift apart and re-read.
  std::vector<StreamSpec> streams(2);
  streams[0].queries.push_back(workload::MakeQ6Like("lineitem"));
  streams[1].queries.push_back(workload::MakeQ1Like("lineitem"));

  // A finer prefetch extent keeps the throttle window (threshold +
  // hysteresis .. grouping budget) wide at this pool size.
  RunConfig throttled = Config(ScanMode::kShared);
  throttled.buffer.prefetch_extent_pages = 4;
  auto with = db()->Run(throttled, streams);
  ASSERT_TRUE(with.ok());

  RunConfig unthrottled = throttled;
  unthrottled.ssm.enable_throttling = false;
  auto without = db()->Run(unthrottled, streams);
  ASSERT_TRUE(without.ok());

  EXPECT_GT(with->ssm.total_wait, 0u);
  EXPECT_EQ(without->ssm.total_wait, 0u);
  EXPECT_LT(with->disk.pages_read, without->disk.pages_read);
}

TEST_F(SharingIntegrationTest, PriorityHintsReduceReads) {
  auto streams = workload::MakeThroughputStreams(
      workload::DefaultQueryMix("lineitem"), 4, 4, 31);
  RunConfig with_hints = Config(ScanMode::kShared);
  auto with = db()->Run(with_hints, streams);
  ASSERT_TRUE(with.ok());

  RunConfig no_hints = Config(ScanMode::kShared);
  no_hints.ssm.enable_priority_hints = false;
  auto without = db()->Run(no_hints, streams);
  ASSERT_TRUE(without.ok());

  EXPECT_LE(with->disk.pages_read, without->disk.pages_read);
}

TEST_F(SharingIntegrationTest, AggregatesMatchAcrossModes) {
  auto streams = workload::MakeThroughputStreams(
      workload::DefaultQueryMix("lineitem"), 3, 4, 5);
  auto [base, shared] = RunBoth(streams);
  for (size_t s = 0; s < streams.size(); ++s) {
    ASSERT_EQ(base.streams[s].queries.size(), shared.streams[s].queries.size());
    for (size_t q = 0; q < base.streams[s].queries.size(); ++q) {
      const auto& bo = base.streams[s].queries[q].output;
      const auto& so = shared.streams[s].queries[q].output;
      ASSERT_EQ(bo.groups.size(), so.groups.size());
      EXPECT_EQ(bo.rows_matched, so.rows_matched);
      for (size_t g = 0; g < bo.groups.size(); ++g) {
        EXPECT_EQ(bo.groups[g].key, so.groups[g].key);
        for (size_t v = 0; v < bo.groups[g].values.size(); ++v) {
          EXPECT_NEAR(bo.groups[g].values[v], so.groups[g].values[v],
                      std::abs(bo.groups[g].values[v]) * 1e-9 + 1e-9);
        }
      }
    }
  }
}

TEST_F(SharingIntegrationTest, TraceAgreesWithCountersAndPairsEveryWait) {
  auto streams =
      workload::MakeStaggeredStreams(workload::MakeQ6Like("lineitem"), 3,
                                     sim::Millis(30));
  RunConfig traced = Config(ScanMode::kShared);
  traced.trace.enabled = true;
  auto shared = db()->Run(traced, streams);
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  ASSERT_NE(shared->trace, nullptr);
  const obs::Tracer& trace = *shared->trace;
  ASSERT_EQ(trace.dropped(), 0u) << "default ring must hold this workload";

  // The trace and the stats structs are two views of the same run; any
  // disagreement means a hook is missing, duplicated, or misplaced.
  using obs::EventKind;
  EXPECT_EQ(trace.count(EventKind::kScanAdmit), shared->ssm.scans_started);
  EXPECT_EQ(trace.count(EventKind::kScanJoin), shared->ssm.scans_joined);
  EXPECT_EQ(trace.count(EventKind::kScanEnd), shared->ssm.scans_ended);
  EXPECT_EQ(trace.count(EventKind::kRegroup), shared->ssm.regroups);
  EXPECT_EQ(trace.count(EventKind::kThrottleInsert), shared->ssm.throttle_events);
  EXPECT_EQ(trace.count(EventKind::kThrottleRelease), shared->ssm.throttle_events);
  EXPECT_EQ(trace.count(EventKind::kCapSuppress), shared->ssm.cap_suppressions);
  EXPECT_EQ(trace.count(EventKind::kPoolHit), shared->buffer.hits);
  EXPECT_EQ(trace.count(EventKind::kPoolMiss), shared->buffer.misses);
  EXPECT_EQ(trace.count(EventKind::kPoolEvict), shared->buffer.evictions);
  EXPECT_EQ(trace.count(EventKind::kDiskRead), shared->disk.requests);
  EXPECT_EQ(trace.count(EventKind::kDiskSeek), shared->disk.seeks);
  EXPECT_EQ(trace.count(EventKind::kQueryBegin), trace.count(EventKind::kQueryEnd));

  // Every inserted wait must be released: scans sleep exactly what the
  // SSM told them to, and no completed scan leaves a wait dangling.
  std::map<uint64_t, uint64_t> outstanding;  // scan id -> open inserts
  sim::Micros inserted_total = 0;
  for (const obs::TraceEvent& e : trace.events()) {
    if (e.kind == EventKind::kThrottleInsert) {
      ++outstanding[e.actor];
      inserted_total += e.dur;
      EXPECT_EQ(e.dur, e.arg0);  // Span length is the wait itself.
    } else if (e.kind == EventKind::kThrottleRelease) {
      ASSERT_GT(outstanding[e.actor], 0u)
          << "scan " << e.actor << ": release without a matching insert";
      --outstanding[e.actor];
    }
  }
  for (const auto& [scan, open] : outstanding) {
    EXPECT_EQ(open, 0u) << "scan " << scan << " ended with an unreleased wait";
  }
  EXPECT_EQ(inserted_total, shared->ssm.total_wait);

  // Tracing off (the default) must leave the run untraced.
  auto base = db()->Run(Config(ScanMode::kBaseline), streams);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->trace, nullptr);
}

TEST_F(SharingIntegrationTest, BigBufferPoolErasesTheProblem) {
  // With the pool as large as the database, even the baseline stops
  // re-reading, and sharing cannot help much — the mechanism must not
  // hurt in that regime.
  auto streams =
      workload::MakeStaggeredStreams(workload::MakeQ6Like("lineitem"), 3,
                                     sim::Millis(100));
  RunConfig base_cfg = Config(ScanMode::kBaseline);
  base_cfg.buffer.num_frames = kTablePages + 64;
  RunConfig shared_cfg = Config(ScanMode::kShared);
  shared_cfg.buffer.num_frames = kTablePages + 64;
  auto base = db()->Run(base_cfg, streams);
  auto shared = db()->Run(shared_cfg, streams);
  ASSERT_TRUE(base.ok() && shared.ok());
  EXPECT_LE(shared->makespan, base->makespan * 105 / 100);
}

}  // namespace
}  // namespace scanshare
