// Copyright (c) scanshare authors. Licensed under the Apache License 2.0.
//
// Unit tests for the policy seam (DESIGN.md §13): the default
// GroupThrottlePolicy's placement special cases exercised THROUGH the
// SharingPolicy interface, the ABM relevance policy's placement/relevance
// math, the PBM trajectory board's wrap-aware predictions, and the PBM
// replacer's farthest-consumption eviction.

#include "ssm/sharing_policy.h"

#include <gtest/gtest.h>

#include <memory>

#include "buffer/page_policy.h"
#include "common/thread_pool.h"
#include "testutil.h"
#include "buffer/policies/page_policies.h"
#include "buffer/policies/pbm_replacer.h"
#include "buffer/policies/scan_position_board.h"
#include "ssm/policies/abm_relevance_policy.h"
#include "ssm/policies/group_throttle_policy.h"
#include "ssm/policies/pbm_predictive_policy.h"

namespace scanshare::ssm {
namespace {

SsmOptions DefaultOptions() {
  SsmOptions o;
  o.prefetch_extent_pages = 16;
  return o;
}

ScanDescriptor FullTableDesc(sim::PageId first = 0, sim::PageId end = 1024) {
  ScanDescriptor d;
  d.table_id = 1;
  d.table_first = first;
  d.table_end = end;
  d.range_first = first;
  d.range_end = end;
  d.estimated_pages = end - first;
  d.estimated_duration = sim::Seconds(10);
  return d;
}

ScanState ActiveScan(ScanId id, sim::PageId pos, double pps,
                     uint64_t remaining, sim::PageId start_page = 0,
                     uint64_t pages_processed = 4096) {
  ScanState s;
  s.id = id;
  s.position = pos;
  s.speed_pps = pps;
  s.desc = FullTableDesc();
  s.start_page = start_page;
  s.pages_processed = pages_processed;
  s.desc.estimated_pages = pages_processed + remaining;
  return s;
}

// ------------------------------------------------- GroupThrottlePolicy

TEST(GroupThrottlePolicyTest, ReusesLastFinishedPositionWhenIdle) {
  // Paper special case through the seam: nobody active, but the previous
  // scan of this table finished at page 500 — its trailing pages are the
  // only warm ones, so the new scan starts there (extent-aligned).
  GroupThrottlePolicy p(DefaultOptions());
  ScanCircle c(0, 1024);
  auto placement = p.Place(FullTableDesc(), 100.0, {}, 0, 500, c);
  EXPECT_EQ(placement.start_page, 496u);  // 500 aligned down to 16-grid.
  EXPECT_EQ(placement.joined_scan, kInvalidScanId);

  // A leftover position outside the new scan's range is ignored.
  auto outside = p.Place(FullTableDesc(0, 256), 100.0, {}, 0, 500, c);
  EXPECT_EQ(outside.start_page, 0u);
}

TEST(GroupThrottlePolicyTest, YoungCandidateJoinedAtItsStart) {
  // Young-candidate refinement through the seam: a candidate whose entire
  // covered region plausibly still sits in the pool is joined at its START
  // page, so the new scan catches up through buffer hits.
  GroupThrottlePolicy p(DefaultOptions());
  ScanCircle c(0, 1024);
  ScanState young = ActiveScan(7, /*pos=*/300, 100.0, /*remaining=*/724,
                               /*start_page=*/256, /*pages_processed=*/44);
  auto placement = p.Place(FullTableDesc(), 100.0, {&young}, 1, std::nullopt, c);
  EXPECT_EQ(placement.joined_scan, 7u);
  EXPECT_EQ(placement.start_page, 256u);  // Candidate's start, not position.

  // A mature candidate (covered region long since evicted) is joined at
  // its current position instead.
  ScanState mature = ActiveScan(7, /*pos=*/300, 100.0, /*remaining=*/724);
  auto at_pos = p.Place(FullTableDesc(), 100.0, {&mature}, 1, std::nullopt, c);
  EXPECT_EQ(at_pos.joined_scan, 7u);
  EXPECT_EQ(at_pos.start_page, 288u);  // 300 aligned down to the 16-grid.
}

TEST(GroupThrottlePolicyTest, DelegatesToSeedComponents) {
  // The default policy's three decisions must equal the seed components'
  // outputs exactly — this is the decision-level half of the bit-identity
  // contract (policy_parity_test pins the run-level half).
  SsmOptions o = DefaultOptions();
  GroupThrottlePolicy p(o);
  PlacementPolicy placement(o);
  ThrottleController throttle(o);
  ScanCircle c(0, 1024);

  ScanState a = ActiveScan(3, 128, 90.0, 800);
  ScanState b = ActiveScan(5, 600, 110.0, 500);
  const std::vector<const ScanState*> active{&a, &b};
  const auto seam = p.Place(FullTableDesc(), 100.0, active, 2, std::nullopt, c);
  const auto seed =
      placement.Choose(FullTableDesc(), 100.0, active, 2, std::nullopt, c);
  EXPECT_EQ(seam.start_page, seed.start_page);
  EXPECT_EQ(seam.joined_scan, seed.joined_scan);

  const std::vector<ScanPoint> points{{3, 128}, {5, 600}};
  const auto groups = p.Group(points, c);
  const auto seed_groups = BuildScanGroups(points, c, o.bufferpool_pages);
  ASSERT_EQ(groups.size(), seed_groups.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    EXPECT_EQ(groups[i].members, seed_groups[i].members);
    EXPECT_EQ(groups[i].trailer, seed_groups[i].trailer);
    EXPECT_EQ(groups[i].leader, seed_groups[i].leader);
    EXPECT_EQ(groups[i].extent_pages, seed_groups[i].extent_pages);
  }

  ScanGroup g;
  g.members = {3, 5};
  g.trailer = 3;
  g.leader = 5;
  ScanState leader = ActiveScan(5, 600, 110.0, 500);
  ScanState trailer = ActiveScan(3, 128, 90.0, 800);
  const auto seam_wait = p.Throttle(leader, g, trailer, c);
  const auto seed_wait = throttle.Decide(leader, g, trailer, c);
  EXPECT_EQ(seam_wait.wait, seed_wait.wait);
  EXPECT_EQ(seam_wait.gap_pages, seed_wait.gap_pages);
}

// ------------------------------------------------- AbmRelevancePolicy

TEST(AbmRelevancePolicyTest, RelevanceCountsNearbyScans) {
  SsmOptions o = DefaultOptions();  // Threshold = 32 pages.
  AbmRelevancePolicy p(o);
  ScanCircle c(0, 1024);
  ScanState a = ActiveScan(1, 100, 100, 500);
  ScanState b = ActiveScan(2, 120, 100, 500);  // Within 32 of 100.
  ScanState d = ActiveScan(3, 500, 100, 500);  // Far away.
  const std::vector<const ScanState*> active{&a, &b, &d};
  EXPECT_EQ(p.RelevanceAt(100, active, c), 2u);
  EXPECT_EQ(p.RelevanceAt(500, active, c), 1u);
  // Either direction on the circle counts: 90 is 10 behind a, 30 behind b.
  EXPECT_EQ(p.RelevanceAt(90, active, c), 2u);
}

TEST(AbmRelevancePolicyTest, PlacesInDensestCluster) {
  SsmOptions o = DefaultOptions();
  AbmRelevancePolicy p(o);
  ScanCircle c(0, 1024);
  // Cluster of two around page ~100; a lone scan at 500.
  ScanState a = ActiveScan(1, 100, 100, 500);
  ScanState b = ActiveScan(2, 120, 100, 500);
  ScanState lone = ActiveScan(3, 500, 100, 900);
  const std::vector<const ScanState*> active{&a, &b, &lone};
  auto placement = p.Place(FullTableDesc(), 100.0, active, 3, std::nullopt, c);
  // Joined inside the cluster (either member has relevance 2 > 1).
  EXPECT_TRUE(placement.joined_scan == 1u || placement.joined_scan == 2u);
  EXPECT_EQ(placement.expected_shared_pages, 2.0);
}

TEST(AbmRelevancePolicyTest, TiePrefersMostStarvedCandidate) {
  SsmOptions o = DefaultOptions();
  AbmRelevancePolicy p(o);
  ScanCircle c(0, 1024);
  // Two singleton candidates (equal relevance 1): the one with more
  // remaining work wins the tie.
  ScanState fresh = ActiveScan(1, 100, 100, /*remaining=*/200);
  ScanState starved = ActiveScan(2, 500, 100, /*remaining=*/900);
  const std::vector<const ScanState*> active{&fresh, &starved};
  auto placement = p.Place(FullTableDesc(), 100.0, active, 2, std::nullopt, c);
  EXPECT_EQ(placement.joined_scan, 2u);
  EXPECT_EQ(placement.start_page, 496u);  // 500 aligned to the extent grid.
}

TEST(AbmRelevancePolicyTest, NeverThrottles) {
  SsmOptions o = DefaultOptions();
  AbmRelevancePolicy p(o);
  ScanCircle c(0, 1024);
  ScanState trailer = ActiveScan(1, 100, 100, 500);
  ScanState leader = ActiveScan(2, 600, 100, 500);  // Gap 500 >> threshold.
  ScanGroup g;
  g.members = {1, 2};
  g.trailer = 1;
  g.leader = 2;
  const auto d = p.Throttle(leader, g, trailer, c);
  EXPECT_EQ(d.wait, 0u);
  EXPECT_FALSE(d.capped);
}

// ------------------------------------------------- PbmPredictivePolicy

TEST(PbmPredictivePolicyTest, NeutralDecisionsAndTrajectoryPublishing) {
  auto board = std::make_shared<buffer::ScanPositionBoard>();
  PbmPredictivePolicy p(board);
  ScanCircle c(0, 1024);

  // Placement ignores ongoing scans: always range begin.
  ScanState ongoing = ActiveScan(1, 500, 100, 500);
  auto placement =
      p.Place(FullTableDesc(), 100.0, {&ongoing}, 1, std::nullopt, c);
  EXPECT_EQ(placement.start_page, 0u);
  EXPECT_EQ(placement.joined_scan, kInvalidScanId);

  // Groups are singletons satisfying the manager's audit shape.
  const std::vector<ScanPoint> points{{1, 500}, {2, 100}};
  const auto groups = p.Group(points, c);
  ASSERT_EQ(groups.size(), 2u);
  for (const ScanGroup& g : groups) {
    ASSERT_EQ(g.members.size(), 1u);
    EXPECT_EQ(g.leader, g.members[0]);
    EXPECT_EQ(g.trailer, g.members[0]);
    EXPECT_EQ(g.extent_pages, 0u);
  }

  // Hooks publish/retire trajectories on the shared board.
  ScanState s = ActiveScan(9, /*pos=*/200, /*pps=*/100.0, /*remaining=*/824,
                           /*start_page=*/128, /*pages_processed=*/72);
  p.OnScanStarted(s);
  EXPECT_EQ(board->size(), 1u);
  s.position = 264;
  p.OnLocationUpdate(s);
  auto eta = board->NextConsumptionUs(300);  // 36 pages ahead at 100 pps.
  ASSERT_TRUE(eta.has_value());
  EXPECT_DOUBLE_EQ(*eta, 360'000.0);
  p.OnScanEnded(9, 128);
  EXPECT_EQ(board->size(), 0u);
}

}  // namespace
}  // namespace scanshare::ssm

namespace scanshare::buffer {
namespace {

ScanPositionBoard::Trajectory MakeTrajectory(uint64_t id, uint64_t pos,
                                             double pps, uint64_t start,
                                             uint64_t first = 0,
                                             uint64_t end = 1024) {
  ScanPositionBoard::Trajectory t;
  t.scan_id = id;
  t.position = pos;
  t.speed_pps = pps;
  t.range_first = first;
  t.range_end = end;
  t.start_page = start;
  return t;
}

TEST(ScanPositionBoardTest, PredictsAlongTheWrapProtocol) {
  ScanPositionBoard board;
  // Pre-wrap scan: started at 256, now at 300, heading to 1024 then
  // wrapping through [0, 256).
  board.Upsert(MakeTrajectory(1, /*pos=*/300, /*pps=*/100.0, /*start=*/256));

  // Straight ahead: 200 pages at 100 pps = 2 s.
  auto ahead = board.NextConsumptionUs(500);
  ASSERT_TRUE(ahead.has_value());
  EXPECT_DOUBLE_EQ(*ahead, 2'000'000.0);

  // On the wrap leg: (1024 - 300) + 100 = 824 pages.
  auto wrapped = board.NextConsumptionUs(100);
  ASSERT_TRUE(wrapped.has_value());
  EXPECT_DOUBLE_EQ(*wrapped, 8'240'000.0);

  // Already consumed this lap (between start and position): never again.
  EXPECT_FALSE(board.NextConsumptionUs(280).has_value());

  // Post-wrap scan: position below start_page — only [position, start)
  // remains; pages at/after start are done.
  board.Upsert(MakeTrajectory(1, /*pos=*/100, /*pps=*/100.0, /*start=*/256));
  auto remaining = board.NextConsumptionUs(200);
  ASSERT_TRUE(remaining.has_value());
  EXPECT_DOUBLE_EQ(*remaining, 1'000'000.0);
  EXPECT_FALSE(board.NextConsumptionUs(500).has_value());

  // Soonest over all scans wins: add a faster scan right behind page 200.
  board.Upsert(MakeTrajectory(2, /*pos=*/190, /*pps=*/1000.0, /*start=*/190));
  auto soonest = board.NextConsumptionUs(200);
  ASSERT_TRUE(soonest.has_value());
  EXPECT_DOUBLE_EQ(*soonest, 10'000.0);
}

TEST(ScanPositionBoardTest, ConcurrentPublishersAndReadersStaySafe) {
  // The board is the one piece of policy state shared across subsystems:
  // the PBM sharing policy publishes trajectories under SSM locks
  // (concurrently for distinct tables) while PbmReplacer reads predictions
  // under a pool partition latch. Writers and readers hammer it in
  // parallel; the TSan preset verifies the leaf lock.
  constexpr size_t kWorkers = 4;
  constexpr int kRounds = 200;
  ScanPositionBoard board;
  testutil::ConcurrencyWitness witness;
  ThreadPool workers(kWorkers);
  workers.ParallelFor(kWorkers, [&](size_t w) {
    witness.Enter();
    const uint64_t id = w + 1;
    for (int r = 0; r < kRounds; ++r) {
      board.Upsert(MakeTrajectory(id, /*pos=*/(w * 100 + static_cast<uint64_t>(r)) % 1024,
                                  /*pps=*/100.0, /*start=*/w * 100));
      auto eta = board.NextConsumptionUs((static_cast<uint64_t>(r) * 7) % 1024);
      if (eta.has_value()) {
        EXPECT_GE(*eta, 0.0);
      }
      if (r % 16 == 15) board.Erase(id);
    }
    witness.Exit();
  });
  EXPECT_TRUE(testutil::OverlapObservedOrSingleCoreNoted(
      "scan-position board", witness.max_concurrent()));
  EXPECT_LE(board.size(), kWorkers);  // Only live publishers remain.
}

TEST(PbmReplacerTest, EmptyBoardDegeneratesToLru) {
  auto board = std::make_shared<ScanPositionBoard>();
  PbmReplacer pbm(4, board);
  LruReplacer lru(4);
  for (FrameId f = 0; f < 4; ++f) {
    pbm.RecordAccess(f);
    pbm.Pin(f);
    pbm.NotePage(f, 100 + f);
    pbm.Unpin(f);
    lru.RecordAccess(f);
    lru.Pin(f);
    lru.Unpin(f);
  }
  for (int i = 0; i < 4; ++i) {
    auto a = pbm.Evict();
    auto b = lru.Evict();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << "eviction " << i;
  }
}

TEST(PbmReplacerTest, EvictsFarthestPredictedConsumption) {
  auto board = std::make_shared<ScanPositionBoard>();
  // One scan at page 100 moving forward: page 110 is near, 900 is far.
  board->Upsert(MakeTrajectory(1, /*pos=*/100, /*pps=*/100.0, /*start=*/0));
  PbmReplacer pbm(3, board);
  struct Install { FrameId frame; uint64_t page; };
  const Install installs[] = {{0, 110}, {1, 900}, {2, 130}};
  for (const auto& in : installs) {
    pbm.RecordAccess(in.frame);
    pbm.Pin(in.frame);
    pbm.NotePage(in.frame, in.page);
    pbm.Unpin(in.frame);
  }
  auto victim = pbm.Evict();
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(*victim, 1u);  // Page 900: farthest ahead of the scan.
  auto next = pbm.Evict();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 2u);  // Page 130 is farther than 110.
}

TEST(PbmReplacerTest, PagesOffEveryScanPathGoFirst) {
  auto board = std::make_shared<ScanPositionBoard>();
  // Post-wrap scan: only [50, 80) remains on its path.
  board->Upsert(MakeTrajectory(1, /*pos=*/50, /*pps=*/100.0, /*start=*/80));
  PbmReplacer pbm(3, board);
  struct Install { FrameId frame; uint64_t page; };
  // Frame 1 holds a dead page (500 — behind the wrap, never read again);
  // frames 0/2 hold pages still on the path.
  const Install installs[] = {{0, 60}, {1, 500}, {2, 75}};
  for (const auto& in : installs) {
    pbm.RecordAccess(in.frame);
    pbm.Pin(in.frame);
    pbm.NotePage(in.frame, in.page);
    pbm.Unpin(in.frame);
  }
  auto victim = pbm.Evict();
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(*victim, 1u);  // Dead weight leaves before live pages.
}

// ------------------------------------------------- PagePolicy hint tables

ReleaseContext GroupCtx(size_t group, bool trailer, uint64_t gap) {
  ReleaseContext ctx;
  ctx.group_size = group;
  ctx.is_trailer = trailer;
  ctx.is_leader = !trailer && group >= 2;
  ctx.successor_gap_pages = gap;
  ctx.extent_pages = 16;
  return ctx;
}

TEST(PagePolicyTest, DefaultReproducesAdvisorHintTable) {
  DefaultPagePolicy p;
  // Singletons and disabled hints are neutral.
  EXPECT_EQ(p.ReleasePriority(GroupCtx(1, false, 0)), PagePriority::kNormal);
  ReleaseContext off = GroupCtx(3, false, 0);
  off.hints_enabled = false;
  EXPECT_EQ(p.ReleasePriority(off), PagePriority::kNormal);
  // Leaders and inner members release High; the trailer releases Low only
  // once its successor cleared the working chunk (gap >= extent).
  EXPECT_EQ(p.ReleasePriority(GroupCtx(3, false, 0)), PagePriority::kHigh);
  EXPECT_EQ(p.ReleasePriority(GroupCtx(3, true, 8)), PagePriority::kHigh);
  EXPECT_EQ(p.ReleasePriority(GroupCtx(3, true, 16)), PagePriority::kLow);
}

TEST(PagePolicyTest, AbmDropsBehindSingletons) {
  AbmPagePolicy p;
  // The one divergence from the default table: a singleton scan's pages
  // serve nobody else — classic ABM drop-behind releases them Low.
  EXPECT_EQ(p.ReleasePriority(GroupCtx(1, false, 0)), PagePriority::kLow);
  EXPECT_EQ(p.ReleasePriority(GroupCtx(3, false, 0)), PagePriority::kHigh);
  EXPECT_EQ(p.ReleasePriority(GroupCtx(3, true, 16)), PagePriority::kLow);
}

TEST(PagePolicyTest, FactoryWiresKindsToReplacers) {
  auto board = std::make_shared<ScanPositionBoard>();
  auto def = MakePagePolicy(PolicyKind::kGroupThrottle, nullptr);
  auto abm = MakePagePolicy(PolicyKind::kAbmRelevance, nullptr);
  auto pbm = MakePagePolicy(PolicyKind::kPbmPredictive, board);
  EXPECT_STREQ(def->MakeReplacer(8)->Name(), "priority-lru");
  EXPECT_STREQ(abm->MakeReplacer(8)->Name(), "priority-lru");
  EXPECT_STREQ(pbm->MakeReplacer(8)->Name(), "pbm-predictive");
  EXPECT_EQ(pbm->ReleasePriority(GroupCtx(3, true, 16)), PagePriority::kNormal);
}

}  // namespace
}  // namespace scanshare::buffer
