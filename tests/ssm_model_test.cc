// Copyright (c) scanshare authors. Licensed under the Apache License 2.0.
//
// Model-based property test for the Scan Sharing Manager. A small
// reference model replays randomized, seeded workloads (StartScan /
// UpdateLocation / EndScan schedules with per-scan speeds, staggered
// starts, early terminations, one or two tables) against the real SSM and
// checks after every operation that
//
//   - the SSM's incrementally maintained groups equal a from-scratch
//     recomputation over the model's positions (and independently: the
//     groups partition the live scans, members sit in circle order, the
//     recorded extent is the trailer->leader distance, and the summed
//     extents respect the buffer-pool merge budget of Fig. 14);
//   - trailers and inner members are never throttled — only a leader of a
//     group of >= 2 ever receives a wait;
//   - a wait is only inserted when the leader->trailer gap exceeds the
//     distance threshold plus one prefetch extent (the hysteresis band),
//     the reported gap matches the model's, and no single wait exceeds
//     max_wait_per_update;
//   - the fairness cap is never exceeded: accumulated wait stays within
//     fairness_cap x tolerance x estimated duration, the SSM's
//     bookkeeping matches the model's running sum, and once a scan's
//     budget is exhausted it is never throttled again (tolerance 0 scans
//     are never throttled at all);
//   - ScanSharingManager::CheckInvariants holds throughout.
//
// The driver runs 64 distinct seeds (the acceptance bar is >= 50).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "ssm/group_builder.h"
#include "ssm/scan_order.h"
#include "ssm/scan_sharing_manager.h"

namespace scanshare::ssm {
namespace {

// ------------------------------------------------------------- the model

struct ModelScan {
  ScanId id = kInvalidScanId;
  uint32_t table = 0;
  sim::PageId start_page = 0;
  sim::PageId position = 0;
  uint64_t pages = 0;
  sim::Micros accumulated_wait = 0;
  bool exhausted_seen = false;
  double tolerance = 1.0;
  uint64_t estimated_pages = 0;
  sim::Micros estimated_duration = 1;
};

struct ModelTable {
  sim::PageId first = 0;
  sim::PageId end = 0;
  uint32_t updates_since_regroup = 0;
  // Snapshot taken at the last regroup: the groups and the positions they
  // were built from (positions drift afterwards when the regroup interval
  // is > 1, so ordering/extent checks must use the snapshot).
  std::vector<ScanGroup> groups;
  std::map<ScanId, sim::PageId> regroup_positions;
};

/// Replays one randomized workload against a fresh SSM, checking the
/// reference model's invariants after every operation.
class ModelDriver {
 public:
  ModelDriver(uint64_t seed, const SsmOptions& options, uint32_t num_tables)
      : rng_(seed), options_(options), ssm_(options) {
    for (uint32_t t = 0; t < num_tables; ++t) {
      ModelTable table;
      table.first = 1000u * t;  // Disjoint page ranges per table.
      table.end =
          table.first + 96 + static_cast<uint64_t>(rng_.Uniform(97));  // 96..192
      tables_.emplace(t, table);
    }
  }

  uint64_t throttle_events() const { return ssm_.stats().throttle_events; }

  void Run(int steps) {
    for (int step = 0; step < steps; ++step) {
      SCOPED_TRACE("step " + std::to_string(step));
      now_ += 1 + rng_.Uniform(20'000);
      const double coin = rng_.NextDouble();
      if ((scans_.size() < 6 && coin < 0.15) || scans_.empty()) {
        StartOne();
      } else if (coin > 0.97 && !scans_.empty()) {
        EndOne(PickScan());
      } else {
        UpdateOne(PickScan());
      }
      CheckAgainstSsm();
      if (testing::Test::HasFatalFailure()) return;
    }
    // Drain: every live scan ends; the SSM must come back to empty.
    while (!scans_.empty()) {
      now_ += 1 + rng_.Uniform(1'000);
      EndOne(scans_.begin()->first);
      CheckAgainstSsm();
      if (testing::Test::HasFatalFailure()) return;
    }
    EXPECT_EQ(ssm_.ActiveScanCount(), 0u);
    for (const auto& [tid, table] : tables_) {
      EXPECT_TRUE(ssm_.GroupsForTable(tid).empty());
    }
  }

 private:
  ScanId PickScan() {
    auto it = scans_.begin();
    std::advance(it, static_cast<long>(rng_.Uniform(scans_.size())));
    return it->first;
  }

  void StartOne() {
    const uint32_t tid = static_cast<uint32_t>(rng_.Uniform(tables_.size()));
    ModelTable& table = tables_.at(tid);
    ScanDescriptor desc;
    desc.table_id = tid;
    desc.table_first = table.first;
    desc.table_end = table.end;
    desc.range_first = table.first;
    desc.range_end = table.end;
    desc.estimated_pages = table.end - table.first;
    // Short durations make the fairness budget (cap x duration) small
    // enough that some scans exhaust it mid-run.
    desc.estimated_duration = 50'000 + rng_.Uniform(5'000'000);
    const double kTolerances[] = {0.0, 0.5, 1.0, 2.0};
    desc.throttle_tolerance = kTolerances[rng_.Uniform(4)];

    auto started = ssm_.StartScan(desc, now_);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    ASSERT_NE(started->id, kInvalidScanId);
    ASSERT_GE(started->start_page, table.first);
    ASSERT_LT(started->start_page, table.end);
    if (started->joined_scan != kInvalidScanId) {
      // Placement may only join a live scan of the same table, starting at
      // the extent-aligned image of either that scan's current position or
      // (for a "young" candidate whose pages are plausibly still resident)
      // its own start page.
      auto joined = scans_.find(started->joined_scan);
      ASSERT_NE(joined, scans_.end());
      EXPECT_EQ(joined->second.table, tid);
      const auto align = [&](sim::PageId page) {
        sim::PageId aligned = page - page % options_.prefetch_extent_pages;
        return aligned < desc.range_first ? desc.range_first : aligned;
      };
      EXPECT_TRUE(started->start_page == align(joined->second.position) ||
                  started->start_page == align(joined->second.start_page))
          << "start " << started->start_page << " joined scan at "
          << joined->second.position << " started at "
          << joined->second.start_page;
    }

    ModelScan scan;
    scan.id = started->id;
    scan.table = tid;
    scan.start_page = started->start_page;
    scan.position = started->start_page;
    scan.tolerance = desc.throttle_tolerance;
    scan.estimated_pages = desc.estimated_pages;
    scan.estimated_duration = desc.estimated_duration;
    scans_.emplace(scan.id, scan);
    RegroupModel(&table);
  }

  void UpdateOne(ScanId id) {
    ModelScan& scan = scans_.at(id);
    ModelTable& table = tables_.at(scan.table);
    const ScanCircle circle(table.first, table.end);
    // Heterogeneous speeds (id-dependent stride) so leaders race ahead of
    // trailers and real gaps open up.
    const uint64_t delta =
        rng_.Uniform(options_.prefetch_extent_pages * (1 + id % 3) + 1);
    scan.position = circle.Advance(scan.position, delta);
    scan.pages += delta;
    if (++table.updates_since_regroup >= options_.regroup_interval_updates) {
      RegroupModel(&table);
    }

    auto updated = ssm_.UpdateLocation(id, scan.position, scan.pages, now_);
    ASSERT_TRUE(updated.ok()) << updated.status().ToString();
    const UpdateResult& r = *updated;

    // Role must agree with the model's group snapshot.
    const ScanGroup* group = nullptr;
    for (const ScanGroup& g : table.groups) {
      if (std::find(g.members.begin(), g.members.end(), id) !=
          g.members.end()) {
        group = &g;
        break;
      }
    }
    ASSERT_NE(group, nullptr);
    EXPECT_EQ(r.group_size, group->size());
    EXPECT_EQ(r.is_leader, group->leader == id);
    EXPECT_EQ(r.is_trailer, group->trailer == id);

    // Property: only the leader of a group of >= 2 is ever throttled —
    // trailers and inner members never wait.
    EXPECT_LE(r.wait, options_.max_wait_per_update);
    if (r.wait > 0) {
      EXPECT_TRUE(r.is_leader);
      EXPECT_FALSE(r.is_trailer);
      EXPECT_GE(r.group_size, 2u);
      // Property: a wait implies the gap left the hysteresis band.
      EXPECT_GT(r.gap_pages, options_.EffectiveDistanceThreshold() +
                                 options_.prefetch_extent_pages);
    }
    if (r.is_leader && r.group_size >= 2) {
      // The reported gap is the trailer->leader forward distance over the
      // model's current positions.
      EXPECT_EQ(r.gap_pages, circle.ForwardDistance(
                                 scans_.at(group->trailer).position,
                                 scan.position));
    }

    // Property: the fairness cap is never exceeded, the SSM's accumulated
    // wait matches the model's running sum, and exhaustion is permanent.
    scan.accumulated_wait += r.wait;
    auto state = ssm_.GetScanState(id);
    ASSERT_TRUE(state.ok());
    EXPECT_EQ(state->accumulated_wait, scan.accumulated_wait);
    const double cap = options_.fairness_cap * scan.tolerance *
                       static_cast<double>(scan.estimated_duration);
    EXPECT_LE(static_cast<double>(scan.accumulated_wait), cap + 1e-6);
    if (scan.tolerance == 0.0) {
      EXPECT_EQ(r.wait, 0u);
    }
    if (scan.exhausted_seen) {
      EXPECT_TRUE(state->throttling_exhausted);
      EXPECT_EQ(r.wait, 0u);
    }
    if (state->throttling_exhausted) scan.exhausted_seen = true;
  }

  void EndOne(ScanId id) {
    const uint32_t tid = scans_.at(id).table;
    const Status ended = ssm_.EndScan(id, now_);
    ASSERT_TRUE(ended.ok()) << ended.ToString();
    scans_.erase(id);
    RegroupModel(&tables_.at(tid));
  }

  void RegroupModel(ModelTable* table) {
    table->updates_since_regroup = 0;
    table->regroup_positions.clear();
    std::vector<ScanPoint> points;
    for (const auto& [id, scan] : scans_) {
      if (&tables_.at(scan.table) != table) continue;
      points.push_back(ScanPoint{id, scan.position});
      table->regroup_positions[id] = scan.position;
    }
    table->groups = BuildScanGroups(points, ScanCircle(table->first, table->end),
                                    options_.bufferpool_pages);
  }

  void CheckAgainstSsm() {
    const Status audit = ssm_.CheckInvariants();
    ASSERT_TRUE(audit.ok()) << audit.ToString();
    ASSERT_EQ(ssm_.ActiveScanCount(), scans_.size());

    for (const auto& [tid, table] : tables_) {
      const std::vector<ScanGroup> actual = ssm_.GroupsForTable(tid);

      // The SSM's live groups equal a from-scratch recomputation.
      ASSERT_EQ(actual.size(), table.groups.size()) << "table " << tid;
      for (size_t g = 0; g < actual.size(); ++g) {
        EXPECT_EQ(actual[g].members, table.groups[g].members);
        EXPECT_EQ(actual[g].trailer, table.groups[g].trailer);
        EXPECT_EQ(actual[g].leader, table.groups[g].leader);
        EXPECT_EQ(actual[g].extent_pages, table.groups[g].extent_pages);
      }

      // Independent structural properties (not via BuildScanGroups).
      const ScanCircle circle(table.first, table.end);
      std::set<ScanId> seen;
      uint64_t extent_sum = 0;
      for (const ScanGroup& g : actual) {
        ASSERT_FALSE(g.members.empty());
        EXPECT_EQ(g.trailer, g.members.front());
        EXPECT_EQ(g.leader, g.members.back());
        for (ScanId member : g.members) {
          EXPECT_TRUE(seen.insert(member).second)
              << "scan " << member << " in two groups";
        }
        // Members sit in circle order from the trailer, and the extent is
        // the trailer->leader distance — both over the snapshot positions
        // the groups were built from.
        uint64_t prev = 0;
        for (ScanId member : g.members) {
          const sim::PageId pos = table.regroup_positions.at(member);
          const uint64_t dist = circle.ForwardDistance(
              table.regroup_positions.at(g.trailer), pos);
          EXPECT_GE(dist, prev) << "member " << member << " out of order";
          prev = dist;
        }
        EXPECT_EQ(g.extent_pages,
                  circle.ForwardDistance(table.regroup_positions.at(g.trailer),
                                         table.regroup_positions.at(g.leader)));
        extent_sum += g.extent_pages;
      }
      // Groups partition the table's live scans...
      size_t live_on_table = 0;
      for (const auto& [id, scan] : scans_) {
        if (scan.table == tid) {
          ++live_on_table;
          EXPECT_TRUE(seen.count(id)) << "scan " << id << " ungrouped";
        }
      }
      EXPECT_EQ(seen.size(), live_on_table);
      // ...and the Fig.-14 merge budget bounds the summed extents.
      EXPECT_LE(extent_sum, options_.bufferpool_pages);
    }
  }

  Rng rng_;
  SsmOptions options_;
  ScanSharingManager ssm_;
  sim::Micros now_ = 0;
  std::map<ScanId, ModelScan> scans_;
  std::map<uint32_t, ModelTable> tables_;
};

// ------------------------------------------------------------------ tests

TEST(SsmModelTest, RandomizedWorkloadsMatchReferenceModel) {
  constexpr int kSeeds = 64;  // Acceptance bar: >= 50 distinct seeds.
  uint64_t total_throttle_events = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng knobs(0xC0FFEE00u + static_cast<uint64_t>(seed));
    SsmOptions options;
    const uint64_t kPools[] = {32, 64, 96, 1024};
    options.bufferpool_pages = kPools[knobs.Uniform(4)];
    options.prefetch_extent_pages = 8;
    // Mix of the default threshold rule and explicit overrides.
    options.distance_threshold_pages = knobs.Bernoulli(0.5) ? 0 : 4 + knobs.Uniform(12);
    options.fairness_cap = knobs.Bernoulli(0.5) ? 0.8 : 0.4;
    options.regroup_interval_updates = knobs.Bernoulli(0.8) ? 1 : 3;
    const uint32_t num_tables = 1 + static_cast<uint32_t>(knobs.Uniform(2));

    ModelDriver driver(0xABCD'1234'0000'0000ull + static_cast<uint64_t>(seed),
                       options, num_tables);
    driver.Run(/*steps=*/220);
    total_throttle_events += driver.throttle_events();
    if (testing::Test::HasFatalFailure()) return;
  }
  // The sweep must actually exercise throttling, not just quiet groups.
  EXPECT_GT(total_throttle_events, 0u);
}

// A directed two-scan scenario: a fast leader pulls away from a slow
// trailer until it is throttled, and — because the leader's estimated
// duration is short — eventually exhausts its fairness budget and runs
// free. Pins down wait accounting end to end without randomness.
TEST(SsmModelTest, DirectedLeaderExhaustsFairnessBudget) {
  SsmOptions options;
  options.bufferpool_pages = 1024;
  options.prefetch_extent_pages = 8;  // Threshold defaults to 16 pages.
  auto ssm = ScanSharingManager(options);

  ScanDescriptor desc;
  desc.table_id = 0;
  desc.table_first = 0;
  desc.table_end = 4096;
  desc.range_first = 0;
  desc.range_end = 4096;
  desc.estimated_pages = 4096;
  desc.estimated_duration = 1'000'000;  // Budget: 0.8 s of throttling.

  sim::Micros now = 0;
  auto leader = ssm.StartScan(desc, now);
  ASSERT_TRUE(leader.ok());
  auto trailer = ssm.StartScan(desc, now);
  ASSERT_TRUE(trailer.ok());
  EXPECT_EQ(trailer->joined_scan, leader->id);  // Smart placement joined.

  const ScanCircle circle(0, 4096);
  sim::PageId leader_pos = leader->start_page;
  sim::PageId trailer_pos = trailer->start_page;
  uint64_t leader_pages = 0, trailer_pages = 0;
  sim::Micros leader_waits = 0;
  uint64_t throttled_updates = 0;
  bool exhausted = false;

  for (int tick = 0; tick < 400; ++tick) {
    now += 10'000;
    // Trailer: 1 page / 10 ms = 100 pps. Leader: 4x faster.
    trailer_pos = circle.Advance(trailer_pos, 1);
    trailer_pages += 1;
    auto tr = ssm.UpdateLocation(trailer->id, trailer_pos, trailer_pages, now);
    ASSERT_TRUE(tr.ok());
    EXPECT_EQ(tr->wait, 0u) << "trailer throttled at tick " << tick;

    leader_pos = circle.Advance(leader_pos, 4);
    leader_pages += 4;
    auto le = ssm.UpdateLocation(leader->id, leader_pos, leader_pages, now);
    ASSERT_TRUE(le.ok());
    if (le->wait > 0) {
      ++throttled_updates;
      leader_waits += le->wait;
      EXPECT_TRUE(le->is_leader);
      EXPECT_GT(le->gap_pages, options.EffectiveDistanceThreshold() +
                                   options.prefetch_extent_pages);
    }
    auto state = ssm.GetScanState(leader->id);
    ASSERT_TRUE(state.ok());
    EXPECT_EQ(state->accumulated_wait, leader_waits);
    if (exhausted) {
      EXPECT_EQ(le->wait, 0u);
    }
    exhausted = state->throttling_exhausted;
    ASSERT_TRUE(ssm.CheckInvariants().ok());
  }

  // The scenario must have gone through all three phases: free running,
  // throttled, budget exhausted.
  EXPECT_GT(throttled_updates, 0u);
  EXPECT_TRUE(exhausted);
  const double cap = options.fairness_cap * static_cast<double>(desc.estimated_duration);
  EXPECT_LE(static_cast<double>(leader_waits), cap + 1e-6);
  EXPECT_GT(static_cast<double>(leader_waits), 0.9 * cap);  // Budget was used.

  ASSERT_TRUE(ssm.EndScan(leader->id, now).ok());
  ASSERT_TRUE(ssm.EndScan(trailer->id, now).ok());
  EXPECT_EQ(ssm.ActiveScanCount(), 0u);
}

}  // namespace
}  // namespace scanshare::ssm
