// Randomized invariant stress for the Scan Sharing Manager: a churn of
// random scan starts, location updates, and ends across multiple tables,
// with structural invariants checked after every operation.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "ssm/scan_sharing_manager.h"

namespace scanshare::ssm {
namespace {

struct LiveScan {
  ScanId id;
  uint32_t table;
  sim::PageId position;
  uint64_t processed;
};

class SsmStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SsmStressTest, RandomChurnPreservesInvariants) {
  SsmOptions options;
  options.bufferpool_pages = 256;
  options.prefetch_extent_pages = 16;
  options.max_wait_per_update = sim::Seconds(2);
  ScanSharingManager ssm(options);

  constexpr uint32_t kTables = 3;
  constexpr uint64_t kTablePages = 2048;

  Rng rng(GetParam());
  std::vector<LiveScan> live;
  sim::Micros now = 0;

  const auto desc_for = [&](uint32_t table) {
    ScanDescriptor d;
    d.table_id = table;
    d.table_first = static_cast<sim::PageId>(table) * kTablePages;
    d.table_end = d.table_first + kTablePages;
    d.range_first = d.table_first;
    d.range_end = d.table_end;
    d.estimated_pages = kTablePages;
    d.estimated_duration = sim::Seconds(1 + rng.Uniform(20));
    return d;
  };

  for (int step = 0; step < 5000; ++step) {
    now += 1 + rng.Uniform(5000);
    const int op = static_cast<int>(rng.Uniform(100));

    if (op < 25 || live.empty()) {
      // Start a scan on a random table.
      const uint32_t table = static_cast<uint32_t>(rng.Uniform(kTables));
      auto start = ssm.StartScan(desc_for(table), now);
      ASSERT_TRUE(start.ok());
      // Placement must land inside the scan range.
      const sim::PageId lo = static_cast<sim::PageId>(table) * kTablePages;
      ASSERT_GE(start->start_page, lo);
      ASSERT_LT(start->start_page, lo + kTablePages);
      live.push_back(LiveScan{start->id, table, start->start_page, 0});
    } else if (op < 85) {
      // Advance a random scan.
      LiveScan& scan = live[rng.Uniform(live.size())];
      const uint64_t delta = 1 + rng.Uniform(64);
      scan.processed += delta;
      const sim::PageId lo = static_cast<sim::PageId>(scan.table) * kTablePages;
      scan.position = lo + ((scan.position - lo) + delta) % kTablePages;
      auto update = ssm.UpdateLocation(scan.id, scan.position, scan.processed, now);
      ASSERT_TRUE(update.ok()) << update.status().ToString();
      ASSERT_GE(update->group_size, 1u);
      // Only leaders of non-singleton groups may be told to wait.
      if (update->wait > 0) {
        ASSERT_TRUE(update->is_leader);
        ASSERT_GE(update->group_size, 2u);
      }
      // A scan's reported speed must stay positive.
      auto state = ssm.GetScanState(scan.id);
      ASSERT_TRUE(state.ok());
      ASSERT_GT(state->speed_pps, 0.0);
    } else {
      // End a random scan.
      const size_t victim = rng.Uniform(live.size());
      ASSERT_TRUE(ssm.EndScan(live[victim].id, now).ok());
      live.erase(live.begin() + static_cast<long>(victim));
    }

    // --- invariants ---
    ASSERT_EQ(ssm.ActiveScanCount(), live.size());

    // Groups partition the active scans of each table, and each group's
    // extent equals the trailer→leader forward distance.
    for (uint32_t table = 0; table < kTables; ++table) {
      std::set<ScanId> expected;
      for (const LiveScan& s : live) {
        if (s.table == table) expected.insert(s.id);
      }
      std::set<ScanId> grouped;
      const ScanCircle circle(static_cast<sim::PageId>(table) * kTablePages,
                              static_cast<sim::PageId>(table + 1) * kTablePages);
      for (const ScanGroup& g : ssm.GroupsForTable(table)) {
        ASSERT_FALSE(g.members.empty());
        ASSERT_EQ(g.members.front(), g.trailer);
        ASSERT_EQ(g.members.back(), g.leader);
        for (ScanId m : g.members) {
          ASSERT_TRUE(expected.count(m)) << "group member not active";
          ASSERT_TRUE(grouped.insert(m).second) << "scan in two groups";
        }
        auto trailer = ssm.GetScanState(g.trailer);
        auto leader = ssm.GetScanState(g.leader);
        ASSERT_TRUE(trailer.ok() && leader.ok());
        ASSERT_EQ(g.extent_pages,
                  circle.ForwardDistance(trailer->position, leader->position));
      }
      ASSERT_EQ(grouped, expected) << "groups do not partition table scans";
    }
  }

  // The churn must have produced real sharing activity.
  EXPECT_GT(ssm.stats().scans_joined, 50u);
  EXPECT_GT(ssm.stats().regroups, 1000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsmStressTest,
                         ::testing::Values(1u, 7u, 42u, 1337u),
                         [](const auto& tpi) {
                           return "seed" + std::to_string(tpi.param);
                         });

// Service-scale density: hundreds of concurrent scans per table — well
// past the ~100-per-table ceiling the random churn above reaches — in
// both regroup modes. The partition invariants must hold at any density;
// the extent-geometry equality additionally holds in legacy mode, where
// every update rebuilds the grouping from live positions (in adaptive
// mode snapshots are intentionally stale between amortized rebuilds, and
// the SSM's own audit likewise only checks geometry at rebuild points).
class SsmDensityTest : public ::testing::TestWithParam<bool> {};

TEST_P(SsmDensityTest, HundredsOfConcurrentScansPerTable) {
  const bool adaptive = GetParam();
  SsmOptions options;
  options.bufferpool_pages = 1024;
  options.prefetch_extent_pages = 16;
  options.adaptive_regroup = adaptive;
  ScanSharingManager ssm(options);

  constexpr uint32_t kTables = 2;
  constexpr uint64_t kTablePages = 8192;
  constexpr size_t kScansPerTable = 400;

  Rng rng(99);
  sim::Micros now = 0;
  std::vector<LiveScan> live;
  for (uint32_t table = 0; table < kTables; ++table) {
    for (size_t i = 0; i < kScansPerTable; ++i) {
      ScanDescriptor d;
      d.table_id = table;
      d.table_first = static_cast<sim::PageId>(table) * kTablePages;
      d.table_end = d.table_first + kTablePages;
      d.range_first = d.table_first;
      d.range_end = d.table_end;
      d.estimated_pages = kTablePages;
      d.estimated_duration = sim::Seconds(1 + rng.Uniform(20));
      auto start = ssm.StartScan(d, ++now);
      ASSERT_TRUE(start.ok());
      live.push_back(LiveScan{start->id, table, start->start_page, 0});
    }
  }
  ASSERT_EQ(ssm.ActiveScanCount(), kTables * kScansPerTable);

  const auto check_partition = [&] {
    for (uint32_t table = 0; table < kTables; ++table) {
      std::set<ScanId> expected;
      for (const LiveScan& s : live) {
        if (s.table == table) expected.insert(s.id);
      }
      std::set<ScanId> grouped;
      const ScanCircle circle(
          static_cast<sim::PageId>(table) * kTablePages,
          static_cast<sim::PageId>(table + 1) * kTablePages);
      for (const ScanGroup& g : ssm.GroupsForTable(table)) {
        ASSERT_FALSE(g.members.empty());
        ASSERT_EQ(g.members.front(), g.trailer);
        ASSERT_EQ(g.members.back(), g.leader);
        for (ScanId m : g.members) {
          ASSERT_TRUE(expected.count(m)) << "group member not active";
          ASSERT_TRUE(grouped.insert(m).second) << "scan in two groups";
        }
        if (!adaptive) {
          auto trailer = ssm.GetScanState(g.trailer);
          auto leader = ssm.GetScanState(g.leader);
          ASSERT_TRUE(trailer.ok() && leader.ok());
          ASSERT_EQ(g.extent_pages, circle.ForwardDistance(
                                        trailer->position, leader->position));
        }
      }
      ASSERT_EQ(grouped, expected) << "groups do not partition table scans";
    }
  };
  check_partition();

  // Random churn at full density: mostly updates, with enough start/end
  // traffic that the registry mutates while dense.
  for (int step = 0; step < 4000; ++step) {
    now += 1 + rng.Uniform(2000);
    const int op = static_cast<int>(rng.Uniform(100));
    if (op < 5) {
      const uint32_t table = static_cast<uint32_t>(rng.Uniform(kTables));
      ScanDescriptor d;
      d.table_id = table;
      d.table_first = static_cast<sim::PageId>(table) * kTablePages;
      d.table_end = d.table_first + kTablePages;
      d.range_first = d.table_first;
      d.range_end = d.table_end;
      d.estimated_pages = kTablePages;
      d.estimated_duration = sim::Seconds(1 + rng.Uniform(20));
      auto start = ssm.StartScan(d, now);
      ASSERT_TRUE(start.ok());
      live.push_back(LiveScan{start->id, table, start->start_page, 0});
    } else if (op < 95) {
      LiveScan& scan = live[rng.Uniform(live.size())];
      const uint64_t delta = 1 + rng.Uniform(64);
      scan.processed += delta;
      const sim::PageId lo =
          static_cast<sim::PageId>(scan.table) * kTablePages;
      scan.position = lo + ((scan.position - lo) + delta) % kTablePages;
      auto update =
          ssm.UpdateLocation(scan.id, scan.position, scan.processed, now);
      ASSERT_TRUE(update.ok()) << update.status().ToString();
    } else {
      const size_t victim = rng.Uniform(live.size());
      ASSERT_TRUE(ssm.EndScan(live[victim].id, now).ok());
      live.erase(live.begin() + static_cast<long>(victim));
    }
    ASSERT_EQ(ssm.ActiveScanCount(), live.size());
    if (step % 250 == 0) {
      check_partition();
      ASSERT_TRUE(ssm.CheckInvariants().ok());
    }
  }
  check_partition();
  ASSERT_TRUE(ssm.CheckInvariants().ok());
  ASSERT_GT(live.size(), 2 * 100u) << "density fell below the target";
  while (!live.empty()) {
    ASSERT_TRUE(ssm.EndScan(live.back().id, ++now).ok());
    live.pop_back();
  }
  EXPECT_EQ(ssm.ActiveScanCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(RegroupModes, SsmDensityTest, ::testing::Bool(),
                         [](const auto& tpi) {
                           return tpi.param ? "adaptive" : "legacy";
                         });

// Fairness-cap exhaustion under mass contention: one fast leader dragging
// hundreds of slow trailers in a single group. The 80 % cap is a
// PER-SCAN budget (0.8 x the leader's estimated duration) — no matter how
// many trailers demand throttling, the leader's inserted waits must stay
// within its own budget, and once the budget drains the controller must
// switch to cap suppressions instead of granting further waits.
TEST(SsmStressAccountingTest, FairnessCapExhaustsUnderHundredsOfTrailers) {
  SsmOptions options;
  options.bufferpool_pages = 4096;
  options.prefetch_extent_pages = 16;
  options.adaptive_regroup = true;  // Service-scale configuration.
  ScanSharingManager ssm(options);

  constexpr uint64_t kTablePages = 1 << 16;
  constexpr size_t kTrailers = 300;
  // A short estimated duration makes the 80 % budget small enough to
  // exhaust quickly: cap = 0.8 * 2 s = 1.6 s of granted waits.
  ScanDescriptor d;
  d.table_id = 1;
  d.table_first = 0;
  d.table_end = kTablePages;
  d.range_first = 0;
  d.range_end = kTablePages;
  d.estimated_pages = kTablePages;
  d.estimated_duration = sim::Seconds(2);

  sim::Micros now = 0;
  auto fast = ssm.StartScan(d, ++now);
  ASSERT_TRUE(fast.ok());
  std::vector<ScanId> trailers;
  for (size_t i = 0; i < kTrailers; ++i) {
    auto s = ssm.StartScan(d, ++now);
    ASSERT_TRUE(s.ok());
    trailers.push_back(s->id);
  }

  Rng rng(31);
  uint64_t fast_pos = fast->start_page;
  uint64_t fast_processed = 0;
  std::vector<uint64_t> trailer_processed(kTrailers, 0);
  std::vector<sim::PageId> trailer_pos(kTrailers);
  for (size_t i = 0; i < kTrailers; ++i) trailer_pos[i] = 0;

  uint64_t granted_to_fast = 0;
  for (int round = 0; round < 1500; ++round) {
    now += 1000 + rng.Uniform(4000);
    // The fast scan races ahead...
    const uint64_t da = 16 + rng.Uniform(16);
    fast_pos = (fast_pos + da) % kTablePages;
    fast_processed += da;
    auto ua = ssm.UpdateLocation(fast->id, fast_pos, fast_processed, now);
    ASSERT_TRUE(ua.ok()) << ua.status().ToString();
    granted_to_fast += ua->wait;
    // ... while a rotating handful of the trailers crawl.
    for (size_t k = 0; k < 10; ++k) {
      const size_t i = (static_cast<size_t>(round) * 10 + k) % kTrailers;
      trailer_processed[i] += 1;
      trailer_pos[i] = (trailer_pos[i] + 1) % kTablePages;
      auto ut = ssm.UpdateLocation(trailers[i], trailer_pos[i],
                                   trailer_processed[i], now);
      ASSERT_TRUE(ut.ok()) << ut.status().ToString();
    }
  }

  const SsmStats& stats = ssm.stats();
  // The leader was really throttled, then really ran out of budget.
  EXPECT_GT(stats.throttle_events, 0u);
  EXPECT_GT(stats.cap_suppressions, 0u)
      << "budget never exhausted — the exhaustion path went untested";
  // The per-scan budget held: everything granted to the fast scan fits in
  // 0.8 x its estimated duration (the final grant is clamped to the
  // remaining budget, so there is no overshoot allowance).
  EXPECT_LE(granted_to_fast,
            static_cast<uint64_t>(options.fairness_cap *
                                  static_cast<double>(d.estimated_duration)));
  ASSERT_TRUE(ssm.CheckInvariants().ok());
}

// Throttle-wait accounting: total_wait equals the sum of granted waits.
TEST(SsmStressAccountingTest, TotalWaitMatchesGrants) {
  SsmOptions options;
  options.bufferpool_pages = 512;
  options.prefetch_extent_pages = 16;
  ScanSharingManager ssm(options);

  ScanDescriptor d;
  d.table_id = 1;
  d.table_first = 0;
  d.table_end = 4096;
  d.range_first = 0;
  d.range_end = 4096;
  d.estimated_pages = 4096;
  d.estimated_duration = sim::Seconds(100);

  auto a = ssm.StartScan(d, 0);
  auto b = ssm.StartScan(d, 0);
  ASSERT_TRUE(a.ok() && b.ok());

  Rng rng(5);
  sim::Micros now = 0;
  uint64_t granted = 0;
  sim::PageId pa = 0, pb = 0;
  uint64_t na = 0, nb = 0;
  for (int i = 0; i < 2000; ++i) {
    now += 1000 + rng.Uniform(9000);
    // A fast, B slow: A gets throttled.
    const uint64_t da = 8 + rng.Uniform(24);
    const uint64_t db = 1 + rng.Uniform(4);
    pa = (pa + da) % 4096;
    pb = (pb + db) % 4096;
    na += da;
    nb += db;
    auto ua = ssm.UpdateLocation(a->id, pa, na, now);
    auto ub = ssm.UpdateLocation(b->id, pb, nb, now);
    ASSERT_TRUE(ua.ok() && ub.ok());
    granted += ua->wait + ub->wait;
  }
  EXPECT_EQ(ssm.stats().total_wait, granted);
  EXPECT_GT(granted, 0u);
}

}  // namespace
}  // namespace scanshare::ssm
