// Randomized invariant stress for the Scan Sharing Manager: a churn of
// random scan starts, location updates, and ends across multiple tables,
// with structural invariants checked after every operation.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "ssm/scan_sharing_manager.h"

namespace scanshare::ssm {
namespace {

struct LiveScan {
  ScanId id;
  uint32_t table;
  sim::PageId position;
  uint64_t processed;
};

class SsmStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SsmStressTest, RandomChurnPreservesInvariants) {
  SsmOptions options;
  options.bufferpool_pages = 256;
  options.prefetch_extent_pages = 16;
  options.max_wait_per_update = sim::Seconds(2);
  ScanSharingManager ssm(options);

  constexpr uint32_t kTables = 3;
  constexpr uint64_t kTablePages = 2048;

  Rng rng(GetParam());
  std::vector<LiveScan> live;
  sim::Micros now = 0;

  const auto desc_for = [&](uint32_t table) {
    ScanDescriptor d;
    d.table_id = table;
    d.table_first = static_cast<sim::PageId>(table) * kTablePages;
    d.table_end = d.table_first + kTablePages;
    d.range_first = d.table_first;
    d.range_end = d.table_end;
    d.estimated_pages = kTablePages;
    d.estimated_duration = sim::Seconds(1 + rng.Uniform(20));
    return d;
  };

  for (int step = 0; step < 5000; ++step) {
    now += 1 + rng.Uniform(5000);
    const int op = static_cast<int>(rng.Uniform(100));

    if (op < 25 || live.empty()) {
      // Start a scan on a random table.
      const uint32_t table = static_cast<uint32_t>(rng.Uniform(kTables));
      auto start = ssm.StartScan(desc_for(table), now);
      ASSERT_TRUE(start.ok());
      // Placement must land inside the scan range.
      const sim::PageId lo = static_cast<sim::PageId>(table) * kTablePages;
      ASSERT_GE(start->start_page, lo);
      ASSERT_LT(start->start_page, lo + kTablePages);
      live.push_back(LiveScan{start->id, table, start->start_page, 0});
    } else if (op < 85) {
      // Advance a random scan.
      LiveScan& scan = live[rng.Uniform(live.size())];
      const uint64_t delta = 1 + rng.Uniform(64);
      scan.processed += delta;
      const sim::PageId lo = static_cast<sim::PageId>(scan.table) * kTablePages;
      scan.position = lo + ((scan.position - lo) + delta) % kTablePages;
      auto update = ssm.UpdateLocation(scan.id, scan.position, scan.processed, now);
      ASSERT_TRUE(update.ok()) << update.status().ToString();
      ASSERT_GE(update->group_size, 1u);
      // Only leaders of non-singleton groups may be told to wait.
      if (update->wait > 0) {
        ASSERT_TRUE(update->is_leader);
        ASSERT_GE(update->group_size, 2u);
      }
      // A scan's reported speed must stay positive.
      auto state = ssm.GetScanState(scan.id);
      ASSERT_TRUE(state.ok());
      ASSERT_GT(state->speed_pps, 0.0);
    } else {
      // End a random scan.
      const size_t victim = rng.Uniform(live.size());
      ASSERT_TRUE(ssm.EndScan(live[victim].id, now).ok());
      live.erase(live.begin() + static_cast<long>(victim));
    }

    // --- invariants ---
    ASSERT_EQ(ssm.ActiveScanCount(), live.size());

    // Groups partition the active scans of each table, and each group's
    // extent equals the trailer→leader forward distance.
    for (uint32_t table = 0; table < kTables; ++table) {
      std::set<ScanId> expected;
      for (const LiveScan& s : live) {
        if (s.table == table) expected.insert(s.id);
      }
      std::set<ScanId> grouped;
      const ScanCircle circle(static_cast<sim::PageId>(table) * kTablePages,
                              static_cast<sim::PageId>(table + 1) * kTablePages);
      for (const ScanGroup& g : ssm.GroupsForTable(table)) {
        ASSERT_FALSE(g.members.empty());
        ASSERT_EQ(g.members.front(), g.trailer);
        ASSERT_EQ(g.members.back(), g.leader);
        for (ScanId m : g.members) {
          ASSERT_TRUE(expected.count(m)) << "group member not active";
          ASSERT_TRUE(grouped.insert(m).second) << "scan in two groups";
        }
        auto trailer = ssm.GetScanState(g.trailer);
        auto leader = ssm.GetScanState(g.leader);
        ASSERT_TRUE(trailer.ok() && leader.ok());
        ASSERT_EQ(g.extent_pages,
                  circle.ForwardDistance(trailer->position, leader->position));
      }
      ASSERT_EQ(grouped, expected) << "groups do not partition table scans";
    }
  }

  // The churn must have produced real sharing activity.
  EXPECT_GT(ssm.stats().scans_joined, 50u);
  EXPECT_GT(ssm.stats().regroups, 1000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsmStressTest,
                         ::testing::Values(1u, 7u, 42u, 1337u),
                         [](const auto& tpi) {
                           return "seed" + std::to_string(tpi.param);
                         });

// Throttle-wait accounting: total_wait equals the sum of granted waits.
TEST(SsmStressAccountingTest, TotalWaitMatchesGrants) {
  SsmOptions options;
  options.bufferpool_pages = 512;
  options.prefetch_extent_pages = 16;
  ScanSharingManager ssm(options);

  ScanDescriptor d;
  d.table_id = 1;
  d.table_first = 0;
  d.table_end = 4096;
  d.range_first = 0;
  d.range_end = 4096;
  d.estimated_pages = 4096;
  d.estimated_duration = sim::Seconds(100);

  auto a = ssm.StartScan(d, 0);
  auto b = ssm.StartScan(d, 0);
  ASSERT_TRUE(a.ok() && b.ok());

  Rng rng(5);
  sim::Micros now = 0;
  uint64_t granted = 0;
  sim::PageId pa = 0, pb = 0;
  uint64_t na = 0, nb = 0;
  for (int i = 0; i < 2000; ++i) {
    now += 1000 + rng.Uniform(9000);
    // A fast, B slow: A gets throttled.
    const uint64_t da = 8 + rng.Uniform(24);
    const uint64_t db = 1 + rng.Uniform(4);
    pa = (pa + da) % 4096;
    pb = (pb + db) % 4096;
    na += da;
    nb += db;
    auto ua = ssm.UpdateLocation(a->id, pa, na, now);
    auto ub = ssm.UpdateLocation(b->id, pb, nb, now);
    ASSERT_TRUE(ua.ok() && ub.ok());
    granted += ua->wait + ub->wait;
  }
  EXPECT_EQ(ssm.stats().total_wait, granted);
  EXPECT_GT(granted, 0u);
}

}  // namespace
}  // namespace scanshare::ssm
