#include "common/stats.h"

#include <gtest/gtest.h>

namespace scanshare {
namespace {

TEST(RunningStatTest, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(7.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, KnownSeries) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);  // Classic textbook example.
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(RunningStatTest, NegativeValues) {
  RunningStat s;
  s.Add(-3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h({1.0, 10.0, 100.0});
  h.Add(0.5);    // bucket 0
  h.Add(1.0);    // bucket 0 (<= bound)
  h.Add(5.0);    // bucket 1
  h.Add(50.0);   // bucket 2
  h.Add(500.0);  // overflow
  EXPECT_EQ(h.num_buckets(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.stat().count(), 5u);
}

TEST(HistogramTest, ApproxQuantile) {
  Histogram h({1.0, 2.0, 3.0, 4.0});
  for (int i = 0; i < 100; ++i) h.Add(0.5);  // All in bucket 0.
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(0.99), 1.0);
}

TEST(HistogramTest, QuantileEmptyIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.ApproxQuantile(0.5), 0.0);
}

TEST(TimeSeriesTest, AccumulatesIntoBuckets) {
  TimeSeries ts(1000);  // 1 ms buckets.
  ts.Add(0, 1.0);
  ts.Add(999, 2.0);
  ts.Add(1000, 5.0);
  ts.Add(2500, 7.0);
  ASSERT_EQ(ts.num_buckets(), 3u);
  EXPECT_DOUBLE_EQ(ts.bucket(0), 3.0);
  EXPECT_DOUBLE_EQ(ts.bucket(1), 5.0);
  EXPECT_DOUBLE_EQ(ts.bucket(2), 7.0);
  EXPECT_DOUBLE_EQ(ts.total(), 15.0);
}

TEST(TimeSeriesTest, UnwrittenBucketReadsZero) {
  TimeSeries ts(100);
  ts.Add(1000, 1.0);
  EXPECT_DOUBLE_EQ(ts.bucket(0), 0.0);
  EXPECT_DOUBLE_EQ(ts.bucket(99), 0.0);  // Beyond the end.
}

TEST(FormatTest, FormatMicros) {
  EXPECT_EQ(FormatMicros(12), "12us");
  EXPECT_EQ(FormatMicros(1500), "1.50ms");
  EXPECT_EQ(FormatMicros(2'500'000), "2.500s");
}

TEST(FormatTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.21), "21.0%");
  EXPECT_EQ(FormatPercent(-0.05), "-5.0%");
  EXPECT_EQ(FormatPercent(1.0), "100.0%");
}

}  // namespace
}  // namespace scanshare
