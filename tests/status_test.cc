#include "common/status.h"

#include <gtest/gtest.h>

namespace scanshare {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryOk) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad count");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad count");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad count");
}

TEST(StatusTest, EachFactoryProducesItsCode) {
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), Status::Code::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), Status::Code::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            Status::Code::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(Status::Corruption("x").code(), Status::Code::kCorruption);
  EXPECT_EQ(Status::NotSupported("x").code(), Status::Code::kNotSupported);
  EXPECT_EQ(Status::Internal("x").code(), Status::Code::kInternal);
}

TEST(StatusTest, ToStringWithoutMessage) {
  EXPECT_EQ(Status::NotFound("").ToString(), "NotFound");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("gone"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), Status::Code::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  ASSERT_TRUE(v.ok());
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v(std::string("abc"));
  EXPECT_EQ(v->size(), 3u);
}

namespace helpers {
Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}
Status Chain(int x) {
  SCANSHARE_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}
StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}
StatusOr<int> Quarter(int x) {
  SCANSHARE_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}
}  // namespace helpers

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helpers::Chain(1).ok());
  EXPECT_EQ(helpers::Chain(-1).code(), Status::Code::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  auto ok = helpers::Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(helpers::Quarter(6).ok());  // 6/2=3 is odd.
  EXPECT_FALSE(helpers::Quarter(5).ok());
}

}  // namespace
}  // namespace scanshare
