#include "exec/stream_executor.h"

#include <gtest/gtest.h>

#include "exec/engine.h"
#include "testutil.h"
#include "workload/queries.h"

namespace scanshare::exec {
namespace {

// A database with a small LINEITEM-like table shared by all tests.
class StreamExecutorTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kPages = 96;

  StreamExecutorTest() { db_ = testutil::MakeLineitemDb(kPages, 42); }

  RunConfig Config(ScanMode mode, size_t frames = 32) {
    RunConfig c;
    c.mode = mode;
    c.buffer.num_frames = frames;
    c.buffer.prefetch_extent_pages = 8;
    c.series_bucket = sim::Millis(100);
    return c;
  }

  QuerySpec CountQuery() {
    QuerySpec q;
    q.name = "count";
    q.table = "lineitem";
    q.aggs.push_back(AggSpec{"cnt", AggOp::kCount, Expr::Const(0)});
    return q;
  }

  std::unique_ptr<Database> db_;
};

TEST_F(StreamExecutorTest, SingleStreamSingleQuery) {
  StreamSpec s;
  s.queries.push_back(CountQuery());
  auto result = db_->Run(Config(ScanMode::kBaseline), {s});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->makespan, 0u);
  ASSERT_EQ(result->streams.size(), 1u);
  ASSERT_EQ(result->streams[0].queries.size(), 1u);
  const QueryRecord& q = result->streams[0].queries[0];
  EXPECT_EQ(q.name, "count");
  auto table = db_->catalog()->GetTable("lineitem");
  EXPECT_DOUBLE_EQ(q.output.groups[0].values[0],
                   static_cast<double>((*table)->num_tuples));
}

TEST_F(StreamExecutorTest, EmptyStreamsRejected) {
  auto result = db_->Run(Config(ScanMode::kBaseline), {});
  EXPECT_FALSE(result.ok());
}

TEST_F(StreamExecutorTest, UnknownTableFails) {
  StreamSpec s;
  QuerySpec q = CountQuery();
  q.table = "ghost";
  s.queries.push_back(q);
  auto result = db_->Run(Config(ScanMode::kBaseline), {s});
  EXPECT_FALSE(result.ok());
}

TEST_F(StreamExecutorTest, StaggerDelaysStreamStart) {
  StreamSpec s1;
  s1.queries.push_back(CountQuery());
  StreamSpec s2 = s1;
  s2.start_delay = sim::Millis(500);
  auto result = db_->Run(Config(ScanMode::kBaseline), {s1, s2});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->streams[0].start, 0u);
  EXPECT_EQ(result->streams[1].start, sim::Millis(500));
}

TEST_F(StreamExecutorTest, InterQueryDelaySeparatesQueries) {
  StreamSpec fast;
  fast.queries = {CountQuery(), CountQuery()};
  auto without = db_->Run(Config(ScanMode::kBaseline), {fast});
  ASSERT_TRUE(without.ok());

  StreamSpec slow = fast;
  slow.inter_query_delay = sim::Seconds(2);
  auto with = db_->Run(Config(ScanMode::kBaseline), {slow});
  ASSERT_TRUE(with.ok());
  EXPECT_GE(with->makespan, without->makespan + sim::Seconds(2));
}

TEST_F(StreamExecutorTest, QueriesRunInOrderWithinStream) {
  StreamSpec s;
  QuerySpec a = CountQuery();
  a.name = "first";
  QuerySpec b = CountQuery();
  b.name = "second";
  s.queries = {a, b};
  auto result = db_->Run(Config(ScanMode::kBaseline), {s});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->streams[0].queries.size(), 2u);
  EXPECT_EQ(result->streams[0].queries[0].name, "first");
  EXPECT_EQ(result->streams[0].queries[1].name, "second");
  EXPECT_LE(result->streams[0].queries[0].metrics.end_time,
            result->streams[0].queries[1].metrics.start_time);
}

TEST_F(StreamExecutorTest, BaselineStaggeredScansReadTwice) {
  StreamSpec s1;
  s1.queries.push_back(CountQuery());
  // The second stream starts once the first is far past the tiny pool's
  // reach: the baseline re-reads every page (the paper's problem case).
  StreamSpec s2 = s1;
  s2.start_delay = sim::Millis(10);
  auto result = db_->Run(Config(ScanMode::kBaseline, /*frames=*/16), {s1, s2});
  ASSERT_TRUE(result.ok());
  auto table = db_->catalog()->GetTable("lineitem");
  EXPECT_GE(result->disk.pages_read, 2 * (*table)->num_pages * 9 / 10);
}

TEST_F(StreamExecutorTest, SharedModeReducesPhysicalReads) {
  StreamSpec s1;
  s1.queries.push_back(CountQuery());
  StreamSpec s2 = s1;
  s2.start_delay = sim::Millis(10);
  auto base = db_->Run(Config(ScanMode::kBaseline, /*frames=*/16), {s1, s2});
  ASSERT_TRUE(base.ok());
  auto shared = db_->Run(Config(ScanMode::kShared, /*frames=*/16), {s1, s2});
  ASSERT_TRUE(shared.ok());
  // The late scan joins the early one: reads approach 1x the table.
  EXPECT_LT(shared->disk.pages_read, base->disk.pages_read * 7 / 10);
  // Results stay identical.
  EXPECT_DOUBLE_EQ(base->streams[0].queries[0].output.groups[0].values[0],
                   shared->streams[0].queries[0].output.groups[0].values[0]);
}

TEST_F(StreamExecutorTest, RunsAreDeterministic) {
  StreamSpec s;
  s.queries.push_back(CountQuery());
  auto a = db_->Run(Config(ScanMode::kShared), {s, s, s});
  auto b = db_->Run(Config(ScanMode::kShared), {s, s, s});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->makespan, b->makespan);
  EXPECT_EQ(a->disk.pages_read, b->disk.pages_read);
  EXPECT_EQ(a->disk.seeks, b->disk.seeks);
  EXPECT_EQ(a->buffer.hits, b->buffer.hits);
  for (size_t i = 0; i < a->streams.size(); ++i) {
    EXPECT_EQ(a->streams[i].end, b->streams[i].end);
  }
}

TEST_F(StreamExecutorTest, TimeSeriesAccountsAllReads) {
  StreamSpec s;
  s.queries.push_back(CountQuery());
  auto result = db_->Run(Config(ScanMode::kBaseline), {s, s});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->reads_over_time.total(),
                   static_cast<double>(result->disk.pages_read));
  EXPECT_DOUBLE_EQ(result->seeks_over_time.total(),
                   static_cast<double>(result->disk.seeks));
  EXPECT_GT(result->reads_over_time.num_buckets(), 0u);
}

TEST_F(StreamExecutorTest, SsmStatsPopulatedInSharedMode) {
  StreamSpec s;
  s.queries.push_back(CountQuery());
  auto result = db_->Run(Config(ScanMode::kShared), {s, s});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ssm.scans_started, 2u);
  EXPECT_EQ(result->ssm.scans_ended, 2u);
  EXPECT_GT(result->ssm.updates, 0u);
}

TEST_F(StreamExecutorTest, BaselineHasNoSsmActivity) {
  StreamSpec s;
  s.queries.push_back(CountQuery());
  auto result = db_->Run(Config(ScanMode::kBaseline), {s});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ssm.scans_started, 0u);
  EXPECT_EQ(result->ssm.updates, 0u);
}

TEST_F(StreamExecutorTest, MakespanIsMaxStreamEnd) {
  StreamSpec s1;
  s1.queries.push_back(CountQuery());
  StreamSpec s2 = s1;
  s2.start_delay = sim::Seconds(3);
  auto result = db_->Run(Config(ScanMode::kBaseline), {s1, s2});
  ASSERT_TRUE(result.ok());
  sim::Micros max_end = 0;
  for (const auto& st : result->streams) max_end = std::max(max_end, st.end);
  EXPECT_EQ(result->makespan, max_end);
}

}  // namespace
}  // namespace scanshare::exec
