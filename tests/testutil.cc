#include "testutil.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <utility>

#include "common/thread_pool.h"
#include "workload/queries.h"
#include "workload/tpch_gen.h"

namespace scanshare::testutil {

std::unique_ptr<exec::Database> MakeLineitemDb(uint64_t pages, uint64_t seed,
                                               const std::string& table) {
  auto db = std::make_unique<exec::Database>();
  auto info = workload::GenerateLineitem(
      db->catalog(), table, workload::LineitemRowsForPages(pages), seed);
  EXPECT_TRUE(info.ok()) << info.status().ToString();
  return db;
}

exec::Database* SharedLineitemDb(uint64_t pages, uint64_t seed) {
  // One leaked instance per geometry, shared across all tests of the
  // binary. The map itself is also leaked: tests are single-threaded at
  // setup time and the process exits through gtest anyway.
  static auto* instances =
      new std::map<std::pair<uint64_t, uint64_t>, exec::Database*>();
  auto key = std::make_pair(pages, seed);
  auto it = instances->find(key);
  if (it == instances->end()) {
    it = instances->emplace(key, MakeLineitemDb(pages, seed).release()).first;
  }
  return it->second;
}

exec::RunConfig MakeRunConfig(exec::ScanMode mode, size_t frames,
                              uint64_t extent) {
  exec::RunConfig c;
  c.mode = mode;
  c.buffer.num_frames = frames;
  c.buffer.prefetch_extent_pages = extent;
  c.series_bucket = sim::Millis(250);
  return c;
}

std::vector<exec::StreamSpec> StaggeredQ1Q6(const std::string& table,
                                            sim::Micros stagger) {
  std::vector<exec::StreamSpec> streams(2);
  streams[0].queries.push_back(workload::MakeQ1Like(table));
  streams[1].queries.push_back(workload::MakeQ6Like(table));
  streams[1].start_delay = stagger;
  return streams;
}

int ConcurrencyWitness::Enter() {
  const int inside = current_.fetch_add(1) + 1;
  int seen = max_.load();
  while (inside > seen && !max_.compare_exchange_weak(seen, inside)) {
  }
  return inside;
}

void ConcurrencyWitness::Exit() { current_.fetch_sub(1); }

bool OverlapObservedOrSingleCoreNoted(const char* what, int max_observed) {
  if (max_observed >= 2) return true;
  if (ThreadPool::HardwareConcurrency() <= 1) {
    // Degrade *loudly*: the parallel aspect of this test did not really
    // run, and a reader of the test log must be able to see that.
    std::fprintf(stderr,
                 "[testutil] NOTICE: %s observed no thread overlap on a "
                 "hardware_concurrency==1 host; cross-thread interleaving "
                 "was NOT exercised (functional checks still ran)\n",
                 what);
    testing::Test::RecordProperty("degraded_single_core", 1);
    return true;
  }
  return false;
}

}  // namespace scanshare::testutil
