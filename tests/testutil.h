// Copyright (c) scanshare authors. Licensed under the Apache License 2.0.
//
// Shared test scaffolding. Every integration-style test used to hand-roll
// the same three things — a lineitem database, a RunConfig, a stream shape
// — with slightly different constants; this header is the single home for
// those helpers so a schema or config change is a one-file edit.
//
// Also home of the concurrency witness the threaded tests use to avoid
// *silently* passing on machines where hardware_concurrency == 1: a test
// that claims to exercise cross-thread behaviour must either observe real
// overlap or say out loud that it could not.

#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "exec/engine.h"

namespace scanshare::testutil {

/// Builds a fresh database holding one lineitem-like table named `table`
/// with `pages` 32 KiB pages, generated from `seed`. Aborts the test
/// binary on generation failure (tests have no recovery story).
std::unique_ptr<exec::Database> MakeLineitemDb(uint64_t pages, uint64_t seed,
                                               const std::string& table = "lineitem");

/// Process-lifetime database for tests that only read: built once per
/// distinct (pages, seed) and intentionally leaked. Do NOT mutate the
/// catalog through this pointer — Database::Run itself is fine, it resets
/// all run state.
exec::Database* SharedLineitemDb(uint64_t pages, uint64_t seed);

/// The canonical test RunConfig: `frames` buffer frames, `extent` prefetch
/// pages, 250 ms series buckets.
exec::RunConfig MakeRunConfig(exec::ScanMode mode, size_t frames,
                              uint64_t extent = 16);

/// The canonical staggered two-stream workload on `table`: a Q1-like scan
/// starting at t=0 and a Q6-like scan starting `stagger` later (the
/// paper's staggered-start experiment, also the golden-trace workload).
std::vector<exec::StreamSpec> StaggeredQ1Q6(const std::string& table,
                                            sim::Micros stagger);

// ---------------------------------------------------------------- threads

/// Observes how many tasks were ever inside a region simultaneously.
/// Enter() at region start, Exit() at region end, max_concurrent() after
/// every participating task has joined.
class ConcurrencyWitness {
 public:
  /// Returns the occupancy at entry (>= 1) and folds it into the maximum.
  int Enter();
  void Exit();
  int max_concurrent() const { return max_.load(); }

 private:
  std::atomic<int> current_{0};
  std::atomic<int> max_{0};
};

/// The threaded-test degradation contract: returns true if real overlap
/// was observed (max_observed >= 2). If not, and the machine cannot
/// overlap threads (hardware_concurrency <= 1), prints an explicit notice
/// and records the gtest property `degraded_single_core` so the run is
/// visibly partial rather than silently green — and still returns true
/// (degradation, not failure). Returns false only when overlap was
/// expected (multi-core host) and missing; callers EXPECT_TRUE the result.
bool OverlapObservedOrSingleCoreNoted(const char* what, int max_observed);

}  // namespace scanshare::testutil
