// ThreadPool contract tests: result delivery through futures, FIFO
// dispatch with a single worker, exception propagation (Submit and the
// lowest-index rule of ParallelFor), full-queue drain on shutdown, and
// the hardware-concurrency fallback.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "testutil.h"

namespace scanshare {
namespace {

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SizeClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto f = pool.Submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPoolTest, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 100;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(kN, [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(4);
  // Several indices throw; the deterministic contract is that the caller
  // sees the lowest-index failure regardless of execution interleaving.
  try {
    pool.ParallelFor(50, [](size_t i) {
      if (i == 7 || i == 13 || i == 31) {
        throw std::runtime_error("fail at " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "fail at 7");
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
    }
    // Destructor runs here with most tasks still queued; it must drain
    // them (otherwise the futures below would block forever).
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, HardwareConcurrencyAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1u);
}

TEST(ThreadPoolTest, ParallelForOverlapsWorkOrSaysItCannot) {
  // The pool's whole point is overlap; this test verifies overlap is real
  // on machines that can provide it, and degrades *loudly* (never
  // silently trivially-green) where hardware_concurrency == 1.
  testutil::ConcurrencyWitness witness;
  ThreadPool pool(4);
  pool.ParallelFor(16, [&](size_t) {
    witness.Enter();
    // Long enough for a second worker to be scheduled into the region on
    // any multi-core box; keeps single-core runtime at ~16 ms total.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    witness.Exit();
  });
  EXPECT_GE(witness.max_concurrent(), 1);
  EXPECT_TRUE(testutil::OverlapObservedOrSingleCoreNoted(
      "thread_pool_test/ParallelForOverlaps", witness.max_concurrent()));
}

}  // namespace
}  // namespace scanshare
