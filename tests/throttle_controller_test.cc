#include "ssm/throttle_controller.h"

#include <gtest/gtest.h>

namespace scanshare::ssm {
namespace {

SsmOptions DefaultOptions() {
  SsmOptions o;
  o.prefetch_extent_pages = 16;          // Threshold = 32 pages.
  o.max_wait_per_update = 1'000'000'000; // Effectively unbounded here.
  return o;
}

ScanState MakeScan(ScanId id, sim::PageId pos, double pps) {
  ScanState s;
  s.id = id;
  s.position = pos;
  s.speed_pps = pps;
  s.desc.estimated_duration = sim::Seconds(100);
  return s;
}

ScanGroup MakeGroup(std::vector<ScanId> members) {
  ScanGroup g;
  g.members = members;
  g.trailer = members.front();
  g.leader = members.back();
  return g;
}

TEST(ThrottleControllerTest, ZeroExtentActsAsOnePageQuantum) {
  // prefetch_extent_pages == 0 ("no prefetch") must behave as a one-page
  // quantum everywhere. Regression: the hysteresis slack used to read the
  // raw field, so a zero-extent config got zero slack while the alignment
  // paths assumed one page — EffectiveExtent() is now the single clamp.
  SsmOptions o = DefaultOptions();
  o.prefetch_extent_pages = 0;
  EXPECT_EQ(o.EffectiveExtent(), 1u);
  EXPECT_EQ(o.EffectiveDistanceThreshold(), 2u);  // 2 * effective extent.

  ThrottleController tc(o);
  ScanCircle c(0, 1000);
  ScanState trailer = MakeScan(1, 100, 100);
  auto g = MakeGroup({1, 2});

  // Gap 3 = threshold (2) + one-page hysteresis slack: not throttled.
  ScanState near_leader = MakeScan(2, 103, 100);
  auto near_decision = tc.Decide(near_leader, g, trailer, c);
  EXPECT_EQ(near_decision.wait, 0u);
  EXPECT_EQ(near_decision.gap_pages, 3u);

  // Gap 4 exceeds the slack: wait for the trailer to close the two excess
  // pages at 100 pages/s = 20'000 us.
  ScanState far_leader = MakeScan(2, 104, 100);
  auto far_decision = tc.Decide(far_leader, g, trailer, c);
  EXPECT_EQ(far_decision.gap_pages, 4u);
  EXPECT_EQ(far_decision.wait, 20'000u);
}

TEST(ThrottleControllerTest, SingletonNeverThrottled) {
  SsmOptions o = DefaultOptions();
  ThrottleController tc(o);
  ScanCircle c(0, 1000);
  ScanState leader = MakeScan(1, 500, 100);
  auto d = tc.Decide(leader, MakeGroup({1}), leader, c);
  EXPECT_EQ(d.wait, 0u);
}

TEST(ThrottleControllerTest, NonLeaderNeverThrottled) {
  SsmOptions o = DefaultOptions();
  ThrottleController tc(o);
  ScanCircle c(0, 1000);
  ScanState trailer = MakeScan(1, 100, 100);
  auto g = MakeGroup({1, 2});  // Leader is scan 2; the caller is the trailer.
  auto d = tc.Decide(trailer, g, trailer, c);
  EXPECT_EQ(d.wait, 0u);
}

TEST(ThrottleControllerTest, LeaderWithinThresholdNotThrottled) {
  SsmOptions o = DefaultOptions();
  ThrottleController tc(o);
  ScanCircle c(0, 1000);
  ScanState trailer = MakeScan(1, 100, 100);
  ScanState leader = MakeScan(2, 130, 100);  // Gap 30 <= 32.
  auto d = tc.Decide(leader, MakeGroup({1, 2}), trailer, c);
  EXPECT_EQ(d.wait, 0u);
  EXPECT_EQ(d.gap_pages, 30u);
}

TEST(ThrottleControllerTest, LeaderBeyondThresholdWaits) {
  SsmOptions o = DefaultOptions();
  ThrottleController tc(o);
  ScanCircle c(0, 10000);
  ScanState trailer = MakeScan(1, 100, 50.0);  // 50 pages/s.
  ScanState leader = MakeScan(2, 232, 100.0);  // Gap 132, excess 100.
  auto d = tc.Decide(leader, MakeGroup({1, 2}), trailer, c);
  EXPECT_EQ(d.gap_pages, 132u);
  // Excess 100 pages at trailer speed 50 pps -> 2 s.
  EXPECT_EQ(d.wait, sim::Seconds(2));
}

TEST(ThrottleControllerTest, WaitScalesWithTrailerSpeed) {
  SsmOptions o = DefaultOptions();
  ThrottleController tc(o);
  ScanCircle c(0, 10000);
  ScanState slow_trailer = MakeScan(1, 0, 10.0);
  ScanState fast_trailer = MakeScan(1, 0, 1000.0);
  ScanState leader = MakeScan(2, 132, 100.0);
  auto g = MakeGroup({1, 2});
  auto slow = tc.Decide(leader, g, slow_trailer, c);
  auto fast = tc.Decide(leader, g, fast_trailer, c);
  EXPECT_GT(slow.wait, fast.wait);
}

TEST(ThrottleControllerTest, WaitClampedToPerUpdateMax) {
  SsmOptions o = DefaultOptions();
  o.max_wait_per_update = 1000;
  ThrottleController tc(o);
  ScanCircle c(0, 10000);
  ScanState trailer = MakeScan(1, 0, 1.0);     // Glacial trailer.
  ScanState leader = MakeScan(2, 5000, 100.0);
  auto d = tc.Decide(leader, MakeGroup({1, 2}), trailer, c);
  EXPECT_EQ(d.wait, 1000u);
}

TEST(ThrottleControllerTest, ExhaustedLeaderNotThrottled) {
  SsmOptions o = DefaultOptions();
  ThrottleController tc(o);
  ScanCircle c(0, 10000);
  ScanState trailer = MakeScan(1, 0, 50.0);
  ScanState leader = MakeScan(2, 500, 100.0);
  leader.throttling_exhausted = true;  // The paper's 80 % rule kicked in.
  auto d = tc.Decide(leader, MakeGroup({1, 2}), trailer, c);
  EXPECT_EQ(d.wait, 0u);
  EXPECT_TRUE(d.capped);
}

TEST(ThrottleControllerTest, DisabledByOption) {
  SsmOptions o = DefaultOptions();
  o.enable_throttling = false;
  ThrottleController tc(o);
  ScanCircle c(0, 10000);
  ScanState trailer = MakeScan(1, 0, 50.0);
  ScanState leader = MakeScan(2, 500, 100.0);
  auto d = tc.Decide(leader, MakeGroup({1, 2}), trailer, c);
  EXPECT_EQ(d.wait, 0u);
}

TEST(ThrottleControllerTest, GapMeasuredAcrossWrap) {
  SsmOptions o = DefaultOptions();
  ThrottleController tc(o);
  ScanCircle c(0, 1000);
  // Leader wrapped: trailer at 990, leader at 90 -> forward gap 100.
  ScanState trailer = MakeScan(1, 990, 100.0);
  ScanState leader = MakeScan(2, 90, 100.0);
  auto d = tc.Decide(leader, MakeGroup({1, 2}), trailer, c);
  EXPECT_EQ(d.gap_pages, 100u);
  EXPECT_GT(d.wait, 0u);
}

TEST(ThrottleControllerTest, CustomDistanceThreshold) {
  SsmOptions o = DefaultOptions();
  o.distance_threshold_pages = 200;
  ThrottleController tc(o);
  ScanCircle c(0, 10000);
  ScanState trailer = MakeScan(1, 0, 100.0);
  ScanState leader = MakeScan(2, 150, 100.0);  // Gap 150 < 200.
  auto d = tc.Decide(leader, MakeGroup({1, 2}), trailer, c);
  EXPECT_EQ(d.wait, 0u);
}

TEST(ThrottleControllerTest, EffectiveThresholdDefaultsToTwoExtents) {
  SsmOptions o;
  o.prefetch_extent_pages = 16;
  EXPECT_EQ(o.EffectiveDistanceThreshold(), 32u);
  o.distance_threshold_pages = 7;
  EXPECT_EQ(o.EffectiveDistanceThreshold(), 7u);
}

}  // namespace
}  // namespace scanshare::ssm
