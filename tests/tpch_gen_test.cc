#include "workload/tpch_gen.h"

#include <gtest/gtest.h>

#include "storage/page.h"

namespace scanshare::workload {
namespace {

class TpchGenTest : public ::testing::Test {
 protected:
  TpchGenTest() : dm_(&env_), catalog_(&dm_) {}

  sim::Env env_;
  storage::DiskManager dm_;
  storage::Catalog catalog_;
};

TEST_F(TpchGenTest, LineitemSchemaColumns) {
  storage::Schema s = LineitemSchema();
  EXPECT_EQ(s.num_columns(), 12u);
  EXPECT_TRUE(s.ColumnIndex("l_quantity").ok());
  EXPECT_TRUE(s.ColumnIndex("l_extendedprice").ok());
  EXPECT_TRUE(s.ColumnIndex("l_discount").ok());
  EXPECT_TRUE(s.ColumnIndex("l_returnflag").ok());
  EXPECT_TRUE(s.ColumnIndex("l_shipdate").ok());
}

TEST_F(TpchGenTest, GeneratesRequestedRowCount) {
  auto info = GenerateLineitem(&catalog_, "li", 12345, 1);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->num_tuples, 12345u);
  EXPECT_GT(info->num_pages, 30u);
}

TEST_F(TpchGenTest, DeterministicAcrossRuns) {
  auto a = GenerateLineitem(&catalog_, "a", 5000, 99);
  auto b = GenerateLineitem(&catalog_, "b", 5000, 99);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_pages, b->num_pages);
  for (uint64_t i = 0; i < a->num_pages; ++i) {
    auto pa = dm_.PageData(a->first_page + i);
    auto pb = dm_.PageData(b->first_page + i);
    ASSERT_TRUE(pa.ok() && pb.ok());
    // Skip the page header (carries the physical id); compare bodies.
    EXPECT_EQ(std::memcmp(*pa + 24, *pb + 24, dm_.page_size() - 24), 0)
        << "page " << i;
  }
}

TEST_F(TpchGenTest, DifferentSeedsDiffer) {
  auto a = GenerateLineitem(&catalog_, "a", 1000, 1);
  auto b = GenerateLineitem(&catalog_, "b", 1000, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  auto pa = dm_.PageData(a->first_page);
  auto pb = dm_.PageData(b->first_page);
  EXPECT_NE(std::memcmp(*pa + 24, *pb + 24, dm_.page_size() - 24), 0);
}

TEST_F(TpchGenTest, ColumnValuesWithinDomains) {
  auto info = GenerateLineitem(&catalog_, "li", 20000, 5);
  ASSERT_TRUE(info.ok());
  const storage::Schema& s = info->schema;
  const size_t qty = *s.ColumnIndex("l_quantity");
  const size_t price = *s.ColumnIndex("l_extendedprice");
  const size_t disc = *s.ColumnIndex("l_discount");
  const size_t tax = *s.ColumnIndex("l_tax");
  const size_t flag = *s.ColumnIndex("l_returnflag");
  const size_t status = *s.ColumnIndex("l_linestatus");
  const size_t ship = *s.ColumnIndex("l_shipdate");

  uint64_t rows = 0;
  for (sim::PageId p = info->first_page; p < info->end_page(); ++p) {
    auto data = dm_.PageData(p);
    ASSERT_TRUE(data.ok());
    storage::Page page(const_cast<uint8_t*>(*data), dm_.page_size());
    ASSERT_TRUE(page.IsValid());
    for (uint16_t slot = 0; slot < page.tuple_count(); ++slot) {
      const uint8_t* t = page.TupleDataUnchecked(slot);
      const double q = s.ReadDouble(t, qty);
      ASSERT_GE(q, 1.0);
      ASSERT_LE(q, 50.0);
      ASSERT_GE(s.ReadDouble(t, price), 900.0);
      const double d = s.ReadDouble(t, disc);
      ASSERT_GE(d, 0.0);
      ASSERT_LE(d, 0.10 + 1e-12);
      ASSERT_GE(s.ReadDouble(t, tax), 0.0);
      const char f = s.ReadChar(t, flag)[0];
      ASSERT_TRUE(f == 'A' || f == 'N' || f == 'R') << f;
      const char st = s.ReadChar(t, status)[0];
      ASSERT_TRUE(st == 'O' || st == 'F') << st;
      const int64_t sd = s.ReadInt64(t, ship);
      ASSERT_GE(sd, kShipDateMin);
      ASSERT_LT(sd, kShipDateDays);
      ++rows;
    }
  }
  EXPECT_EQ(rows, 20000u);
}

TEST_F(TpchGenTest, ShipDatesRoughlyUniformOverSevenYears) {
  auto info = GenerateLineitem(&catalog_, "li", 70000, 11);
  ASSERT_TRUE(info.ok());
  const storage::Schema& s = info->schema;
  const size_t ship = *s.ColumnIndex("l_shipdate");
  uint64_t per_year[7] = {0};
  for (sim::PageId p = info->first_page; p < info->end_page(); ++p) {
    auto data = dm_.PageData(p);
    storage::Page page(const_cast<uint8_t*>(*data), dm_.page_size());
    for (uint16_t slot = 0; slot < page.tuple_count(); ++slot) {
      const int64_t d = s.ReadInt64(page.TupleDataUnchecked(slot), ship);
      ++per_year[d / 365];
    }
  }
  for (uint64_t c : per_year) {
    EXPECT_GT(c, 8500u);   // ~10000 expected per year.
    EXPECT_LT(c, 11500u);
  }
}

TEST_F(TpchGenTest, OrdersTableLoads) {
  auto info = GenerateOrders(&catalog_, "orders", 3000, 3);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->num_tuples, 3000u);
  EXPECT_TRUE(info->schema.ColumnIndex("o_orderpriority").ok());
}

TEST_F(TpchGenTest, RowsForPagesApproximation) {
  const uint64_t rows = LineitemRowsForPages(100);
  auto info = GenerateLineitem(&catalog_, "li", rows, 21);
  ASSERT_TRUE(info.ok());
  // The estimate must land within 5 % of the requested page count.
  EXPECT_GE(info->num_pages, 95u);
  EXPECT_LE(info->num_pages, 105u);
}

}  // namespace
}  // namespace scanshare::workload
