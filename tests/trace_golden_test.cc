// Copyright (c) scanshare authors. Licensed under the Apache License 2.0.
//
// Golden-trace regression test: the canonical staggered Q1/Q6 shared run
// must produce exactly the recorded *structure* of lifecycle events —
// event kinds, actors, and emission order, deliberately not timestamps
// (those belong to perf, not structure). A diff here means the scan
// lifecycle itself changed: admission, placement joins, leader/trailer
// transitions, throttling, or completion order.
//
// Updating the golden after an intentional behaviour change:
//
//   SCANSHARE_REGEN_GOLDEN=1 ./build/tests/trace_golden_test
//
// rewrites tests/golden/staggered_q1q6.trace in the source tree (the path
// is baked in via SCANSHARE_GOLDEN_DIR); re-run without the variable to
// confirm, and commit the new golden together with the change that
// explains it.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.h"
#include "testutil.h"

namespace scanshare {
namespace {

std::string GoldenPath() {
  return std::string(SCANSHARE_GOLDEN_DIR) + "/staggered_q1q6.trace";
}

TEST(TraceGoldenTest, StaggeredQ1Q6LifecycleStructureIsStable) {
  // The workload constants are part of the golden contract: changing any
  // of them legitimately changes the trace and requires a regen.
  exec::Database* db = testutil::SharedLineitemDb(/*pages=*/96, /*seed=*/2024);
  exec::RunConfig config =
      testutil::MakeRunConfig(exec::ScanMode::kShared, /*frames=*/24);
  config.trace.enabled = true;
  const auto streams = testutil::StaggeredQ1Q6("lineitem", sim::Millis(20));

  auto result = db->Run(config, streams);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->trace, nullptr);
  EXPECT_EQ(result->trace->dropped(), 0u) << "ring too small for golden run";
  const std::string summary = obs::StructuralSummary(result->trace->events());
  ASSERT_FALSE(summary.empty());

  if (std::getenv("SCANSHARE_REGEN_GOLDEN") != nullptr) {
    ASSERT_TRUE(obs::WriteTextFile(GoldenPath(), summary).ok());
    GTEST_SKIP() << "regenerated " << GoldenPath() << " (" << summary.size()
                 << " bytes); re-run without SCANSHARE_REGEN_GOLDEN to verify";
  }

  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.good()) << "missing golden " << GoldenPath()
                         << " — run with SCANSHARE_REGEN_GOLDEN=1 to create";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(summary, golden.str())
      << "lifecycle structure diverged from " << GoldenPath()
      << " — if intentional, regen with SCANSHARE_REGEN_GOLDEN=1";

  // Identical reruns must produce the identical trace (determinism: the
  // golden is meaningful only because the run is reproducible).
  auto again = db->Run(config, streams);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(obs::StructuralSummary(again->trace->events()), summary);
}

}  // namespace
}  // namespace scanshare
