// Unit tests for the obs:: subsystem: tracer ring semantics (bounded,
// drop-newest, counted), kind naming, the three exporters, the hook
// macro's null-safety, and the metrics registry.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>

#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace scanshare::obs {
namespace {

// GCC 12's -Wstringop-overflow falsely proves an overflowing push into a
// tiny constant-capacity ring (the size >= capacity drop branch makes it
// unreachable); an opaque capacity keeps the optimizer from folding that
// proof into a warning.
size_t Opaque(size_t v) {
  volatile size_t x = v;
  return x;
}

TEST(TracerTest, EmitStoresEventsInOrder) {
  Tracer tracer(16);
  tracer.Emit(EventKind::kScanAdmit, 100, 1, 64, 7);
  tracer.Emit(EventKind::kThrottleInsert, 200, 1, 5000, 32, 5000);
  tracer.Emit(EventKind::kScanEnd, 300, 1, 640, 5000);

  ASSERT_EQ(tracer.events().size(), 3u);
  EXPECT_EQ(tracer.events()[0].kind, EventKind::kScanAdmit);
  EXPECT_EQ(tracer.events()[0].at, 100u);
  EXPECT_EQ(tracer.events()[0].actor, 1u);
  EXPECT_EQ(tracer.events()[0].arg0, 64u);
  EXPECT_EQ(tracer.events()[0].arg1, 7u);
  EXPECT_EQ(tracer.events()[1].dur, 5000u);
  EXPECT_EQ(tracer.count(EventKind::kScanAdmit), 1u);
  EXPECT_EQ(tracer.emitted(), 3u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, FullRingDropsNewestAndCounts) {
  Tracer tracer(Opaque(4));
  for (uint64_t i = 0; i < 10; ++i) {
    tracer.Emit(EventKind::kPoolHit, i, 0, i);
  }
  // The deterministic *prefix* is kept: events 0..3 stored, 4..9 dropped.
  ASSERT_EQ(tracer.events().size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tracer.events()[i].arg0, i);
  }
  EXPECT_EQ(tracer.dropped(), 6u);
  // Per-kind counts include dropped emissions (they count *activity*).
  EXPECT_EQ(tracer.count(EventKind::kPoolHit), 10u);
  EXPECT_EQ(tracer.emitted(), 10u);
}

TEST(TracerTest, ClearResetsEventsAndCounters) {
  Tracer tracer(Opaque(2));
  tracer.Emit(EventKind::kPoolHit, 1, 0);
  tracer.Emit(EventKind::kPoolHit, 2, 0);
  tracer.Emit(EventKind::kPoolHit, 3, 0);
  EXPECT_EQ(tracer.dropped(), 1u);
  tracer.Clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.emitted(), 0u);
  EXPECT_EQ(tracer.capacity(), 2u);
}

TEST(TracerTest, HookMacroIsNullSafeAndSkipsArgumentEvaluation) {
  Tracer* none = nullptr;
  int evaluations = 0;
  auto payload = [&evaluations] {
    ++evaluations;
    return uint64_t{7};
  };
  SCANSHARE_TRACE_EVENT(none, EventKind::kPoolHit, 1, 0, payload());
  EXPECT_EQ(evaluations, 0);  // Null tracer: args must not be evaluated.

  Tracer tracer(4);
  SCANSHARE_TRACE_EVENT(&tracer, EventKind::kPoolHit, 1, 0, payload());
  EXPECT_EQ(evaluations, 1);
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_EQ(tracer.events()[0].arg0, 7u);
}

TEST(TracerTest, EveryKindHasAUniqueName) {
  std::set<std::string> names;
  for (size_t k = 0; k < kNumEventKinds; ++k) {
    const std::string name = EventKindName(static_cast<EventKind>(k));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate name: " << name;
  }
}

TEST(TracerTest, LifecycleClassificationMatchesGoldenContract) {
  // Lifecycle = scan-actor events + query begin/end; per-page noise is not.
  EXPECT_TRUE(IsLifecycleKind(EventKind::kScanAdmit));
  EXPECT_TRUE(IsLifecycleKind(EventKind::kThrottleInsert));
  EXPECT_TRUE(IsLifecycleKind(EventKind::kThrottleRelease));
  EXPECT_TRUE(IsLifecycleKind(EventKind::kScanEnd));
  EXPECT_TRUE(IsLifecycleKind(EventKind::kQueryBegin));
  EXPECT_FALSE(IsLifecycleKind(EventKind::kPoolHit));
  EXPECT_FALSE(IsLifecycleKind(EventKind::kDiskRead));
  EXPECT_FALSE(IsLifecycleKind(EventKind::kRegroup));
}

// ----------------------------------------------------------------- export

std::vector<TraceEvent> SampleEvents() {
  Tracer tracer(32);
  tracer.Emit(EventKind::kScanAdmit, 100, 2, 64, 7);
  tracer.Emit(EventKind::kPoolMiss, 150, 0, 64, 16);
  tracer.Emit(EventKind::kDiskRead, 150, 0, 64, 16, 800);
  tracer.Emit(EventKind::kThrottleInsert, 1000, 2, 500, 40, 500);
  tracer.Emit(EventKind::kThrottleRelease, 1500, 2, 500);
  tracer.Emit(EventKind::kScanAdmit, 1200, 1, 0, 7);
  tracer.Emit(EventKind::kScanEnd, 9000, 2, 64, 500);
  tracer.Emit(EventKind::kQueryEnd, 100, 0, 0, 0, 8900);
  return tracer.events();
}

TEST(ExportTest, ChromeTraceJsonIsWellFormedAndComplete) {
  const std::string json = ChromeTraceJson(SampleEvents());
  // Wrapper object with the traceEvents array and a display unit.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // Spans render as ph:"X" with a dur; instants as ph:"i".
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Every kind that was emitted appears by name.
  EXPECT_NE(json.find("scan_admit"), std::string::npos);
  EXPECT_NE(json.find("throttle_insert"), std::string::npos);
  EXPECT_NE(json.find("disk_read"), std::string::npos);
  // Process-name metadata for the three synthetic rows.
  EXPECT_NE(json.find("process_name"), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity without a parser).
  ptrdiff_t braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ExportTest, ScanTimelineCsvSortsByScanThenTime) {
  const std::string csv = ScanTimelineCsv(SampleEvents());
  const std::string header = "scan,at_us,dur_us,event,arg0,arg1";
  ASSERT_EQ(csv.rfind(header, 0), 0u) << csv;
  // Scan 1's admit (t=1200) sorts before scan 2's rows despite being
  // emitted later; pool/disk noise does not appear at all.
  const size_t scan1 = csv.find("\n1,1200,");
  const size_t scan2 = csv.find("\n2,100,");
  ASSERT_NE(scan1, std::string::npos) << csv;
  ASSERT_NE(scan2, std::string::npos) << csv;
  EXPECT_LT(scan1, scan2);
  EXPECT_EQ(csv.find("pool_"), std::string::npos);
  EXPECT_EQ(csv.find("disk_"), std::string::npos);
}

TEST(ExportTest, StructuralSummaryIsTimestampFreeEmissionOrder) {
  const std::string summary = StructuralSummary(SampleEvents());
  // Lifecycle kinds only, in emission order, as `kind actor` lines.
  EXPECT_EQ(summary.rfind("scan_admit 2\n", 0), 0u) << summary;
  EXPECT_NE(summary.find("throttle_insert 2\n"), std::string::npos);
  EXPECT_NE(summary.find("scan_admit 1\n"), std::string::npos);
  EXPECT_EQ(summary.find("disk_read"), std::string::npos);
  EXPECT_EQ(summary.find("pool_miss"), std::string::npos);
  // No digits-only timestamp columns: every line is `name actor`.
  size_t lines = 0;
  for (size_t pos = 0; pos < summary.size();) {
    size_t eol = summary.find('\n', pos);
    if (eol == std::string::npos) eol = summary.size();
    const std::string line = summary.substr(pos, eol - pos);
    EXPECT_EQ(std::count(line.begin(), line.end(), ' '), 1) << line;
    ++lines;
    pos = eol + 1;
  }
  EXPECT_EQ(lines, 6u);  // 8 sample events minus pool_miss and disk_read.
}

TEST(ExportTest, WriteTextFileRoundTripsAndFailsOnBadPath) {
  const std::string path = testing::TempDir() + "/scanshare_trace_test.txt";
  ASSERT_TRUE(WriteTextFile(path, "hello\n").ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[16] = {};
  const size_t n = std::fread(buf, 1, sizeof buf, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), "hello\n");

  EXPECT_FALSE(WriteTextFile("/nonexistent-dir/x/y/z.txt", "x").ok());
}

// ---------------------------------------------------------------- metrics

TEST(MetricsRegistryTest, CollectSamplesInRegistrationOrder) {
  MetricsRegistry registry;
  uint64_t hits = 10;
  registry.RegisterCounter("buffer.hits", [&hits] { return hits; });
  registry.RegisterGauge("buffer.hit_ratio", [] { return 0.5; });
  registry.RegisterCounter("disk.reads", [] { return uint64_t{3}; });

  hits = 42;  // Readers sample *current* values, not registration-time ones.
  const std::vector<MetricSample> samples = registry.Collect();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "buffer.hits");
  EXPECT_EQ(samples[0].counter, 42u);
  EXPECT_EQ(samples[1].type, MetricSample::Type::kGauge);
  EXPECT_DOUBLE_EQ(samples[1].gauge, 0.5);
  EXPECT_EQ(samples[2].name, "disk.reads");
}

TEST(MetricsRegistryTest, ReRegistrationReplacesInPlace) {
  MetricsRegistry registry;
  registry.RegisterCounter("a", [] { return uint64_t{1}; });
  registry.RegisterCounter("b", [] { return uint64_t{2}; });
  registry.RegisterCounter("a", [] { return uint64_t{99}; });
  EXPECT_EQ(registry.size(), 2u);
  const auto samples = registry.Collect();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "a");  // Keeps first-registration order.
  EXPECT_EQ(samples[0].counter, 99u);
}

TEST(MetricsRegistryTest, MetricsJsonRendersBothTypes) {
  MetricsRegistry registry;
  registry.RegisterCounter("runs", [] { return uint64_t{7}; });
  registry.RegisterGauge("ratio", [] { return 0.25; });
  const std::string json = MetricsJson(registry.Collect());
  EXPECT_NE(json.find("\"runs\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ratio\": 0.25"), std::string::npos) << json;
}

}  // namespace
}  // namespace scanshare::obs
