// Tests for the time/location trace recording (the paper's Figure-7/8
// diagrams) and the query-priority throttling extension (the paper's
// stated future work).

#include <gtest/gtest.h>

#include "exec/engine.h"
#include "metrics/report.h"
#include "ssm/scan_sharing_manager.h"
#include "testutil.h"
#include "workload/queries.h"
#include "workload/tpch_gen.h"

namespace scanshare {
namespace {

using exec::Database;
using exec::RunConfig;
using exec::ScanMode;
using exec::StreamSpec;

Database* Db() { return testutil::SharedLineitemDb(96, 321); }

// ------------------------------------------------------------------ traces

TEST(TraceTest, OffByDefault) {
  StreamSpec s;
  s.queries.push_back(workload::MakeQ6Like("lineitem"));
  RunConfig c;
  c.buffer.num_frames = 32;
  auto run = Db()->Run(c, {s});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->streams[0].queries[0].trace.empty());
}

TEST(TraceTest, RecordsOneSamplePerStep) {
  StreamSpec s;
  s.queries.push_back(workload::MakeQ6Like("lineitem"));
  RunConfig c;
  c.buffer.num_frames = 32;
  c.record_traces = true;
  auto run = Db()->Run(c, {s});
  ASSERT_TRUE(run.ok());
  const auto& trace = run->streams[0].queries[0].trace;
  auto table = Db()->catalog()->GetTable("lineitem");
  // One sample per extent-sized step.
  const uint64_t extent = c.buffer.prefetch_extent_pages;
  EXPECT_EQ(trace.size(), ((*table)->num_pages + extent - 1) / extent);
  // Samples are time-ordered and positions stay on the table.
  for (size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(trace[i].time, trace[i - 1].time);
    }
    EXPECT_GE(trace[i].position, (*table)->first_page);
    EXPECT_LE(trace[i].position, (*table)->end_page());
  }
}

TEST(TraceTest, BaselineTracePositionsMonotonic) {
  StreamSpec s;
  s.queries.push_back(workload::MakeQ6Like("lineitem"));
  RunConfig c;
  c.mode = ScanMode::kBaseline;
  c.buffer.num_frames = 32;
  c.record_traces = true;
  auto run = Db()->Run(c, {s});
  ASSERT_TRUE(run.ok());
  const auto& trace = run->streams[0].queries[0].trace;
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].position, trace[i - 1].position);
  }
}

TEST(TraceTest, SharedTraceWrapsAtMostOnce) {
  // Prime an ongoing scan so the traced scan starts mid-table and wraps.
  std::vector<StreamSpec> streams(2);
  streams[0].queries.push_back(workload::MakeQ6Like("lineitem"));
  streams[1].start_delay = sim::Millis(15);
  streams[1].queries.push_back(workload::MakeQ6Like("lineitem"));
  RunConfig c;
  c.buffer.num_frames = 32;
  c.record_traces = true;
  auto run = Db()->Run(c, streams);
  ASSERT_TRUE(run.ok());
  const auto& trace = run->streams[1].queries[0].trace;
  int drops = 0;
  for (size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].position < trace[i - 1].position) ++drops;
  }
  EXPECT_LE(drops, 1);  // Exactly the wrap (or none if it started at 0).
}

TEST(TraceTest, RendererHandlesRunsWithAndWithoutTraces) {
  StreamSpec s;
  s.queries.push_back(workload::MakeQ6Like("lineitem"));
  RunConfig c;
  c.buffer.num_frames = 32;
  c.record_traces = true;
  auto with = Db()->Run(c, {s});
  c.record_traces = false;
  auto without = Db()->Run(c, {s});
  ASSERT_TRUE(with.ok() && without.ok());
  auto table = Db()->catalog()->GetTable("lineitem");
  // Smoke: must not crash on either input (output goes to stdout).
  metrics::PrintLocationTraces("with", *with, (*table)->first_page,
                               (*table)->num_pages, 40, 10);
  metrics::PrintLocationTraces("without", *without, (*table)->first_page,
                               (*table)->num_pages, 40, 10);
}

TEST(TraceTest, RendererSkipsTracesOfOtherTables) {
  // Two tables, traces recorded for both; rendering against one table's
  // span must ignore the other table's samples rather than misplace them.
  exec::Database db;
  ASSERT_TRUE(workload::GenerateLineitem(db.catalog(), "a",
                                         workload::LineitemRowsForPages(32), 1)
                  .ok());
  ASSERT_TRUE(workload::GenerateLineitem(db.catalog(), "b",
                                         workload::LineitemRowsForPages(32), 2)
                  .ok());
  std::vector<StreamSpec> streams(2);
  streams[0].queries.push_back(workload::MakeQ6Like("a"));
  streams[1].queries.push_back(workload::MakeQ6Like("b"));
  RunConfig c;
  c.buffer.num_frames = 32;
  c.record_traces = true;
  auto run = db.Run(c, streams);
  ASSERT_TRUE(run.ok());
  auto table_a = db.catalog()->GetTable("a");
  // Smoke: renders without touching table b's positions.
  metrics::PrintLocationTraces("table a only", *run, (*table_a)->first_page,
                               (*table_a)->num_pages, 40, 8);
}

// ---------------------------------------------------------------- priority

ssm::ScanDescriptor Desc(double tolerance) {
  ssm::ScanDescriptor d;
  d.table_id = 1;
  d.table_first = 0;
  d.table_end = 1024;
  d.range_first = 0;
  d.range_end = 1024;
  d.estimated_pages = 1024;
  d.estimated_duration = sim::Seconds(1);
  d.throttle_tolerance = tolerance;
  return d;
}

TEST(PriorityThrottleTest, NegativeToleranceRejected) {
  ssm::SsmOptions o;
  ssm::ScanSharingManager ssm(o);
  EXPECT_FALSE(ssm.StartScan(Desc(-0.5), 0).ok());
}

TEST(PriorityThrottleTest, ZeroToleranceNeverWaits) {
  ssm::SsmOptions o;
  o.bufferpool_pages = 256;
  o.prefetch_extent_pages = 16;
  ssm::ScanSharingManager ssm(o);
  auto fast = ssm.StartScan(Desc(0.0), 0);
  auto slow = ssm.StartScan(Desc(1.0), 0);
  ASSERT_TRUE(fast.ok() && slow.ok());
  ASSERT_TRUE(ssm.UpdateLocation(slow->id, 1, 1, sim::Seconds(1)).ok());
  auto u = ssm.UpdateLocation(fast->id, 100, 100, sim::Seconds(1));
  ASSERT_TRUE(u.ok());
  EXPECT_TRUE(u->is_leader);
  EXPECT_EQ(u->wait, 0u);  // Budget 0: exhausted immediately.
}

TEST(PriorityThrottleTest, ToleranceScalesTheBudget) {
  ssm::SsmOptions o;
  o.bufferpool_pages = 256;
  o.prefetch_extent_pages = 16;
  o.fairness_cap = 0.5;
  o.max_wait_per_update = sim::Seconds(100);
  ssm::ScanSharingManager ssm(o);
  // Tolerance 2.0: budget = 0.5 * 2.0 * 1s = 1s.
  auto fast = ssm.StartScan(Desc(2.0), 0);
  auto slow = ssm.StartScan(Desc(1.0), 0);
  ASSERT_TRUE(fast.ok() && slow.ok());
  ASSERT_TRUE(ssm.UpdateLocation(slow->id, 1, 1, sim::Seconds(1)).ok());
  // Gap 199 pages, trailer 1 pps: raw wait would be ~167 s; the grant is
  // clamped to the 1 s budget.
  auto u = ssm.UpdateLocation(fast->id, 200, 200, sim::Seconds(1));
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->wait, sim::Seconds(1));
  auto state = ssm.GetScanState(fast->id);
  EXPECT_TRUE(state->throttling_exhausted);
}

TEST(PriorityThrottleTest, EndToEndZeroToleranceNeverWaits) {
  std::vector<StreamSpec> hi(2), lo(2);
  exec::QuerySpec interactive = workload::MakeQ6Like("lineitem");
  interactive.throttle_tolerance = 0.0;
  exec::QuerySpec patient = workload::MakeQ6Like("lineitem");
  patient.throttle_tolerance = 1.0;
  exec::QuerySpec slow = workload::MakeQ1Like("lineitem");

  hi[0].queries.assign(2, interactive);
  hi[1].queries.assign(2, slow);
  lo[0].queries.assign(2, patient);
  lo[1].queries.assign(2, slow);

  RunConfig c;
  c.buffer.num_frames = 32;
  c.buffer.prefetch_extent_pages = 4;  // Keeps the throttle window open.
  auto run_hi = Db()->Run(c, hi);
  auto run_lo = Db()->Run(c, lo);
  ASSERT_TRUE(run_hi.ok() && run_lo.ok());
  // The guaranteed contract of tolerance 0 is "this query's scans never
  // wait". (It is NOT guaranteed to finish sooner: an unthrottled fast
  // scan drifts away from the group, loses its buffer hits, and may well
  // end up slower end-to-end — the paper's counter-intuitive observation
  // about why slowing scans down speeds them up.)
  for (const auto& q : run_hi->streams[0].queries) {
    EXPECT_EQ(q.metrics.throttle_wait, 0u);
  }
  // The patient variant is allowed to wait...
  uint64_t patient_wait = 0;
  for (const auto& q : run_lo->streams[0].queries) {
    patient_wait += q.metrics.throttle_wait;
  }
  // ...and those waits buy the system fewer physical reads.
  EXPECT_GT(patient_wait, 0u);
  EXPECT_LE(run_lo->disk.pages_read, run_hi->disk.pages_read);
}

}  // namespace
}  // namespace scanshare
