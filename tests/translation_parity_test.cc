// Copyright (c) scanshare authors. Licensed under the Apache License 2.0.
//
// A/B parity of the two page-translation structures: the direct-mapped
// translation array (default) and the legacy unordered_map page table must
// produce byte-identical run results — every buffer/disk/SSM counter,
// every per-query metric, every aggregate value (compared with exact
// floating-point equality), and the full read/seek time series — on the
// experiment configurations the paper's figures use (E1 throughput mix,
// E2 staggered Q6), under both the baseline and the shared engine.

#include <gtest/gtest.h>

#include <memory>

#include "buffer/buffer_pool.h"
#include "buffer/replacer.h"
#include "exec/engine.h"
#include "storage/disk_manager.h"
#include "testutil.h"
#include "workload/queries.h"

namespace scanshare {
namespace {

using buffer::TranslationMode;
using exec::Database;
using exec::RunConfig;
using exec::RunResult;
using exec::ScanMode;
using exec::StreamSpec;

class TranslationParityTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kTablePages = 256;

  static Database* db() {
    return testutil::SharedLineitemDb(kTablePages, 2024);
  }

  static RunConfig Config(ScanMode mode, TranslationMode translation) {
    RunConfig c;
    c.mode = mode;
    c.buffer.num_frames = db()->FramesForFraction(0.05);
    c.buffer.prefetch_extent_pages = 16;
    c.buffer.translation = translation;
    c.series_bucket = sim::Millis(250);
    return c;
  }

  static void ExpectSeriesEqual(const TimeSeries& a, const TimeSeries& b,
                                const char* what) {
    ASSERT_EQ(a.num_buckets(), b.num_buckets()) << what;
    for (size_t i = 0; i < a.num_buckets(); ++i) {
      EXPECT_EQ(a.bucket(i), b.bucket(i)) << what << " bucket " << i;
    }
  }

  /// Exact equality of everything a run reports. Doubles are compared with
  /// operator== on purpose: both translation modes execute the same scans
  /// in the same order, so results must be bit-identical, not just close.
  static void ExpectRunsIdentical(const RunResult& a, const RunResult& b) {
    // Buffer pool counters.
    EXPECT_EQ(a.buffer.logical_reads, b.buffer.logical_reads);
    EXPECT_EQ(a.buffer.hits, b.buffer.hits);
    EXPECT_EQ(a.buffer.misses, b.buffer.misses);
    EXPECT_EQ(a.buffer.physical_pages, b.buffer.physical_pages);
    EXPECT_EQ(a.buffer.io_requests, b.buffer.io_requests);
    EXPECT_EQ(a.buffer.evictions, b.buffer.evictions);
    // Disk counters.
    EXPECT_EQ(a.disk.requests, b.disk.requests);
    EXPECT_EQ(a.disk.pages_read, b.disk.pages_read);
    EXPECT_EQ(a.disk.bytes_read, b.disk.bytes_read);
    EXPECT_EQ(a.disk.seeks, b.disk.seeks);
    EXPECT_EQ(a.disk.busy_micros, b.disk.busy_micros);
    EXPECT_EQ(a.disk.queue_wait_micros, b.disk.queue_wait_micros);
    // SSM counters.
    EXPECT_EQ(a.ssm.scans_started, b.ssm.scans_started);
    EXPECT_EQ(a.ssm.scans_joined, b.ssm.scans_joined);
    EXPECT_EQ(a.ssm.updates, b.ssm.updates);
    EXPECT_EQ(a.ssm.throttle_events, b.ssm.throttle_events);
    EXPECT_EQ(a.ssm.total_wait, b.ssm.total_wait);
    // Timing and series.
    EXPECT_EQ(a.makespan, b.makespan);
    ExpectSeriesEqual(a.reads_over_time, b.reads_over_time, "reads");
    ExpectSeriesEqual(a.seeks_over_time, b.seeks_over_time, "seeks");
    // Per-stream, per-query records.
    ASSERT_EQ(a.streams.size(), b.streams.size());
    for (size_t s = 0; s < a.streams.size(); ++s) {
      EXPECT_EQ(a.streams[s].start, b.streams[s].start) << "stream " << s;
      EXPECT_EQ(a.streams[s].end, b.streams[s].end) << "stream " << s;
      ASSERT_EQ(a.streams[s].queries.size(), b.streams[s].queries.size());
      for (size_t q = 0; q < a.streams[s].queries.size(); ++q) {
        const exec::QueryRecord& qa = a.streams[s].queries[q];
        const exec::QueryRecord& qb = b.streams[s].queries[q];
        EXPECT_EQ(qa.name, qb.name);
        EXPECT_EQ(qa.metrics.pages_scanned, qb.metrics.pages_scanned);
        EXPECT_EQ(qa.metrics.tuples_scanned, qb.metrics.tuples_scanned);
        EXPECT_EQ(qa.metrics.tuples_matched, qb.metrics.tuples_matched);
        EXPECT_EQ(qa.metrics.buffer_hits, qb.metrics.buffer_hits);
        EXPECT_EQ(qa.metrics.buffer_misses, qb.metrics.buffer_misses);
        EXPECT_EQ(qa.metrics.cpu, qb.metrics.cpu);
        EXPECT_EQ(qa.metrics.io_stall, qb.metrics.io_stall);
        EXPECT_EQ(qa.metrics.throttle_wait, qb.metrics.throttle_wait);
        EXPECT_EQ(qa.metrics.overhead, qb.metrics.overhead);
        EXPECT_EQ(qa.metrics.start_time, qb.metrics.start_time);
        EXPECT_EQ(qa.metrics.end_time, qb.metrics.end_time);
        // Aggregate output: exact, including doubles.
        EXPECT_EQ(qa.output.rows_scanned, qb.output.rows_scanned);
        EXPECT_EQ(qa.output.rows_matched, qb.output.rows_matched);
        ASSERT_EQ(qa.output.groups.size(), qb.output.groups.size());
        for (size_t g = 0; g < qa.output.groups.size(); ++g) {
          EXPECT_EQ(qa.output.groups[g].key, qb.output.groups[g].key);
          EXPECT_EQ(qa.output.groups[g].rows, qb.output.groups[g].rows);
          ASSERT_EQ(qa.output.groups[g].values.size(),
                    qb.output.groups[g].values.size());
          for (size_t v = 0; v < qa.output.groups[g].values.size(); ++v) {
            EXPECT_EQ(qa.output.groups[g].values[v],
                      qb.output.groups[g].values[v])
                << "stream " << s << " query " << q << " group " << g
                << " value " << v;
          }
        }
      }
    }
  }

  static void RunParity(const std::vector<StreamSpec>& streams,
                        ScanMode mode) {
    auto array_run = db()->Run(Config(mode, TranslationMode::kArray), streams);
    ASSERT_TRUE(array_run.ok()) << array_run.status().ToString();
    auto map_run = db()->Run(Config(mode, TranslationMode::kMap), streams);
    ASSERT_TRUE(map_run.ok()) << map_run.status().ToString();
    ExpectRunsIdentical(*array_run, *map_run);
    // Sanity: the workload actually exercised the pool.
    EXPECT_GT(array_run->buffer.logical_reads, 0u);
    EXPECT_GT(array_run->buffer.hits, 0u);
    EXPECT_GT(array_run->buffer.misses, 0u);
  }
};

// E1 configuration: multi-stream throughput run over the default query mix.
TEST_F(TranslationParityTest, ThroughputMixBaseline) {
  const auto streams = workload::MakeThroughputStreams(
      workload::DefaultQueryMix("lineitem"), 3, 3, 7);
  RunParity(streams, ScanMode::kBaseline);
}

TEST_F(TranslationParityTest, ThroughputMixShared) {
  const auto streams = workload::MakeThroughputStreams(
      workload::DefaultQueryMix("lineitem"), 3, 3, 7);
  RunParity(streams, ScanMode::kShared);
}

// E2 configuration: staggered Q6 streams (the paper's Figure-15 shape).
TEST_F(TranslationParityTest, StaggeredQ6Baseline) {
  const auto streams = workload::MakeStaggeredStreams(
      workload::MakeQ6Like("lineitem"), 3, sim::Millis(500));
  RunParity(streams, ScanMode::kBaseline);
}

TEST_F(TranslationParityTest, StaggeredQ6Shared) {
  const auto streams = workload::MakeStaggeredStreams(
      workload::MakeQ6Like("lineitem"), 3, sim::Millis(500));
  RunParity(streams, ScanMode::kShared);
}

// The default must be the array mode (the point of the optimization), and
// the option must carry through to the pool.
TEST_F(TranslationParityTest, ArrayModeIsDefault) {
  buffer::BufferPoolOptions options;
  EXPECT_EQ(options.translation, TranslationMode::kArray);
}

// Satellite S5: the header fast path (array mode) and FetchSlow (map mode)
// must agree on *error* behaviour, not just on successful fetches: same
// status codes for out-of-range and clip-range violations — against both
// resident and non-resident pages — and identical untouched statistics
// afterwards.
class TranslationErrorParityTest : public ::testing::Test {
 protected:
  struct Harness {
    sim::Env env;
    storage::DiskManager dm{&env};
    std::unique_ptr<buffer::BufferPool> pool;

    explicit Harness(TranslationMode translation) {
      EXPECT_TRUE(dm.AllocateContiguous(32).ok());
      buffer::BufferPoolOptions o;
      o.num_frames = 8;
      o.prefetch_extent_pages = 4;
      o.translation = translation;
      pool = std::make_unique<buffer::BufferPool>(
          &dm, std::make_unique<buffer::LruReplacer>(8), o);
    }
  };

  static void ExpectStatsEqual(const buffer::BufferPoolStats& a,
                               const buffer::BufferPoolStats& b) {
    EXPECT_EQ(a.logical_reads, b.logical_reads);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.physical_pages, b.physical_pages);
    EXPECT_EQ(a.io_requests, b.io_requests);
    EXPECT_EQ(a.evictions, b.evictions);
  }

  /// Runs `probe` against both modes and requires the same status code and
  /// identical (pre == post) statistics in each.
  template <typename Probe>
  void ExpectErrorParity(Probe probe, Status::Code want) {
    Harness array(TranslationMode::kArray);
    Harness map(TranslationMode::kMap);
    for (Harness* h : {&array, &map}) {
      // Make pages [0, 4) resident and unpinned in both pools.
      ASSERT_TRUE(h->pool->FetchPage(0, 0).ok());
      ASSERT_TRUE(h->pool->UnpinPage(0, buffer::PagePriority::kNormal).ok());
      const buffer::BufferPoolStats before = h->pool->stats();
      const Status st = probe(h->pool.get());
      EXPECT_EQ(st.code(), want) << st.ToString();
      ExpectStatsEqual(h->pool->stats(), before);
      EXPECT_TRUE(h->pool->CheckInvariants().ok());
    }
    ExpectStatsEqual(array.pool->stats(), map.pool->stats());
  }
};

TEST_F(TranslationErrorParityTest, OutOfRangePage) {
  ExpectErrorParity(
      [](buffer::BufferPool* pool) {
        return pool->FetchPage(1000, 0).status();
      },
      Status::Code::kOutOfRange);
}

TEST_F(TranslationErrorParityTest, ResidentPageOutsideClipRange) {
  // Page 2 is resident (prefetched with page 0); clip [8, 16) excludes it.
  ExpectErrorParity(
      [](buffer::BufferPool* pool) {
        return pool->FetchPage(2, 0, 8, 16).status();
      },
      Status::Code::kInvalidArgument);
}

TEST_F(TranslationErrorParityTest, NonResidentPageOutsideClipRange) {
  ExpectErrorParity(
      [](buffer::BufferPool* pool) {
        return pool->FetchPage(20, 0, 0, 16).status();
      },
      Status::Code::kInvalidArgument);
}

TEST_F(TranslationErrorParityTest, AllFramesPinned) {
  Harness array(TranslationMode::kArray);
  Harness map(TranslationMode::kMap);
  for (Harness* h : {&array, &map}) {
    // Pin the whole pool, then demand a page from another extent.
    for (sim::PageId p = 0; p < 8; ++p) {
      ASSERT_TRUE(h->pool->FetchPage(p, 0).ok());
    }
    const buffer::BufferPoolStats before = h->pool->stats();
    const Status st = h->pool->FetchPage(16, 100).status();
    EXPECT_EQ(st.code(), Status::Code::kResourceExhausted) << st.ToString();
    ExpectStatsEqual(h->pool->stats(), before);
    EXPECT_TRUE(h->pool->CheckInvariants().ok());
  }
  ExpectStatsEqual(array.pool->stats(), map.pool->stats());
}

}  // namespace
}  // namespace scanshare
