#include "storage/value.h"

#include <gtest/gtest.h>

namespace scanshare::storage {
namespace {

TEST(ValueTest, Int64) {
  Value v = Value::Int64(-42);
  EXPECT_EQ(v.type(), TypeId::kInt64);
  EXPECT_EQ(v.AsInt64(), -42);
  EXPECT_EQ(v.ToString(), "-42");
}

TEST(ValueTest, Double) {
  Value v = Value::Double(3.5);
  EXPECT_EQ(v.type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.5);
  EXPECT_EQ(v.ToString(), "3.5");
}

TEST(ValueTest, Char) {
  Value v = Value::Char("AB");
  EXPECT_EQ(v.type(), TypeId::kChar);
  EXPECT_EQ(v.AsChar(), "AB");
  EXPECT_EQ(v.ToString(), "AB");
}

TEST(ValueTest, CharToStringTrimsPadding) {
  std::string padded("X");
  padded.resize(5, '\0');
  Value v = Value::Char(padded);
  EXPECT_EQ(v.ToString(), "X");
}

TEST(ValueTest, AllPaddingRendersEmpty) {
  Value v = Value::Char(std::string(4, '\0'));
  EXPECT_EQ(v.ToString(), "");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Int64(5), Value::Int64(5));
  EXPECT_FALSE(Value::Int64(5) == Value::Int64(6));
  EXPECT_FALSE(Value::Int64(5) == Value::Double(5.0));  // Types differ.
  EXPECT_EQ(Value::Char("a"), Value::Char("a"));
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(TypeName(TypeId::kInt64), "int64");
  EXPECT_STREQ(TypeName(TypeId::kDouble), "double");
  EXPECT_STREQ(TypeName(TypeId::kChar), "char");
}

}  // namespace
}  // namespace scanshare::storage
