#include "sim/virtual_clock.h"

#include <gtest/gtest.h>

namespace scanshare::sim {
namespace {

TEST(VirtualClockTest, StartsAtZero) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now(), 0u);
}

TEST(VirtualClockTest, AdvanceAccumulates) {
  VirtualClock clock;
  clock.Advance(100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150u);
}

TEST(VirtualClockTest, AdvanceToMovesForward) {
  VirtualClock clock;
  clock.AdvanceTo(1000);
  EXPECT_EQ(clock.Now(), 1000u);
}

TEST(VirtualClockTest, AdvanceToPastIsNoOp) {
  VirtualClock clock;
  clock.AdvanceTo(1000);
  clock.AdvanceTo(500);  // Time never moves backwards.
  EXPECT_EQ(clock.Now(), 1000u);
}

TEST(VirtualClockTest, AdvanceToSameIsNoOp) {
  VirtualClock clock;
  clock.AdvanceTo(77);
  clock.AdvanceTo(77);
  EXPECT_EQ(clock.Now(), 77u);
}

TEST(VirtualClockTest, ResetReturnsToZero) {
  VirtualClock clock;
  clock.Advance(123456);
  clock.Reset();
  EXPECT_EQ(clock.Now(), 0u);
}

TEST(VirtualClockTest, ConversionHelpers) {
  EXPECT_EQ(Seconds(3), 3'000'000u);
  EXPECT_EQ(Millis(7), 7'000u);
  EXPECT_EQ(Seconds(0), 0u);
}

}  // namespace
}  // namespace scanshare::sim
