// Positive control: MUST COMPILE. Identical shape to the drop_* snippets
// but with results consumed — proves the compile-fail tests fail because
// of [[nodiscard]], not because of an unrelated breakage in the headers.
#include "buffer/buffer_pool.h"
#include "buffer/page_guard.h"
#include "storage/disk_manager.h"

scanshare::buffer::PageGuard MakeGuard();

void ConsumeAll(scanshare::buffer::BufferPool* pool,
                scanshare::storage::DiskManager* dm) {
  scanshare::Status st = pool->FlushAll();
  (void)st;
  auto page = dm->AllocateContiguous(4);
  (void)page;
  scanshare::buffer::PageGuard guard = MakeGuard();
  guard.Release();
}
