// MUST NOT COMPILE under -Werror: discarding a returned PageGuard drops
// the pin immediately. Pins the class-level [[nodiscard]] on PageGuard.
#include "buffer/page_guard.h"

scanshare::buffer::PageGuard MakeGuard();

void DropGuard() {
  MakeGuard();  // pin released on the spot — always a bug
}
