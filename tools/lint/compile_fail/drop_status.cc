// MUST NOT COMPILE under -Werror: dropping a Status returned by a
// BufferPool API. Pins the class-level [[nodiscard]] on Status.
#include "buffer/buffer_pool.h"

void DropStatus(scanshare::buffer::BufferPool* pool) {
  pool->FlushAll();  // ignored Status
}
