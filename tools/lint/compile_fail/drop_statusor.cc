// MUST NOT COMPILE under -Werror: dropping a StatusOr returned by a
// DiskManager API. Pins the class-level [[nodiscard]] on StatusOr<T>.
#include "storage/disk_manager.h"

void DropStatusOr(scanshare::storage::DiskManager* dm) {
  dm->AllocateContiguous(4);  // ignored StatusOr<PageId>
}
