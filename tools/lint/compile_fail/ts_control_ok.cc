// Thread-safety positive control: pulls in every annotated engine header
// and exercises the correct capability pattern. Must compile cleanly
// UNDER -Wthread-safety -Wthread-safety-beta -Werror — if this fails, a
// header's annotations regressed and the ts_*.cc rejections above are not
// attributable to the analysis.

#include "buffer/partitioned_buffer_pool.h"
#include "buffer/policies/scan_position_board.h"
#include "common/lock_order.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "ssm/scan_sharing_manager.h"
#include "storage/disk_manager.h"

namespace {

class Control {
 public:
  void Mutate() SCANSHARE_EXCLUDES(mu_) {
    scanshare::MutexLock lock(mu_);
    ++value_;
    MutateLocked();
  }

  int Read() SCANSHARE_EXCLUDES(mu_) {
    scanshare::MutexLock lock(mu_);
    return value_;
  }

  void ReadShared() SCANSHARE_EXCLUDES(registry_mu_) {
    scanshare::ReaderLock lock(registry_mu_);
    (void)shared_value_;
  }

  void WriteShared() SCANSHARE_EXCLUDES(registry_mu_) {
    scanshare::WriterLock lock(registry_mu_);
    ++shared_value_;
  }

 private:
  void MutateLocked() SCANSHARE_REQUIRES(mu_) { ++value_; }

  scanshare::Mutex mu_
      SCANSHARE_ACQUIRED_AFTER(scanshare::lock_order::kDriver);
  scanshare::SharedMutex registry_mu_
      SCANSHARE_ACQUIRED_BEFORE(scanshare::lock_order::kSsmTable);
  int value_ SCANSHARE_GUARDED_BY(mu_) = 0;
  int shared_value_ SCANSHARE_GUARDED_BY(registry_mu_) = 0;
};

}  // namespace

int main() {
  Control c;
  c.Mutate();
  c.WriteShared();
  c.ReadShared();
  scanshare::buffer::ScanPositionBoard board;
  board.Upsert({/*scan_id=*/1, /*position=*/0, /*speed_pps=*/1.0,
                /*range_first=*/0, /*range_end=*/8, /*start_page=*/0});
  return c.Read();
}
