// Thread-safety compile-fail: re-acquiring a mutex already held on the
// same path — a guaranteed self-deadlock with std::mutex underneath.

#include "common/mutex.h"

namespace {

class Reentrant {
 public:
  // VIOLATION: mu_ is acquired while already held.
  void Bad() {
    scanshare::MutexLock outer(mu_);
    scanshare::MutexLock inner(mu_);
    ++value_;
  }

 private:
  scanshare::Mutex mu_;
  int value_ SCANSHARE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Reentrant r;
  r.Bad();
  return 0;
}
