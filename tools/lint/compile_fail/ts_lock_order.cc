// Thread-safety compile-fail: acquiring two mutexes against their
// declared SCANSHARE_ACQUIRED_BEFORE order (caught by
// -Wthread-safety-beta, which is why the build carries both flags).

#include "common/mutex.h"

namespace {

class Ordered {
 public:
  void Good() {
    scanshare::MutexLock a(first_);
    scanshare::MutexLock b(second_);
    ++in_order_;
  }

  // VIOLATION: second_ is declared to be acquired after first_.
  void Bad() {
    scanshare::MutexLock b(second_);
    scanshare::MutexLock a(first_);
    ++in_order_;
  }

 private:
  scanshare::Mutex first_ SCANSHARE_ACQUIRED_BEFORE(second_);
  scanshare::Mutex second_;
  int in_order_ SCANSHARE_GUARDED_BY(first_) = 0;
};

}  // namespace

int main() {
  Ordered o;
  o.Good();
  o.Bad();
  return 0;
}
