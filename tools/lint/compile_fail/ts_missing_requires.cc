// Thread-safety compile-fail: calling a SCANSHARE_REQUIRES function
// without holding the required capability — the *Locked-method contract
// the SSM uses for its audit helpers.

#include "common/mutex.h"

namespace {

class Registry {
 public:
  // VIOLATION: MutateLocked requires mu_, which is not held here.
  void Mutate() { MutateLocked(); }

  void MutateSafely() {
    scanshare::MutexLock lock(mu_);
    MutateLocked();
  }

 private:
  void MutateLocked() SCANSHARE_REQUIRES(mu_) { ++value_; }

  scanshare::Mutex mu_;
  int value_ SCANSHARE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Registry r;
  r.Mutate();
  r.MutateSafely();
  return 0;
}
