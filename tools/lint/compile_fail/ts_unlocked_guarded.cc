// Thread-safety compile-fail: writing a SCANSHARE_GUARDED_BY field
// without holding its mutex. Must compile as plain C++ (the annotations
// are inert) and fail under clang -Wthread-safety -Werror.

#include "common/mutex.h"

namespace {

class Counter {
 public:
  // VIOLATION: mutates value_ without mu_.
  void Increment() { ++value_; }

  void Reset() {
    scanshare::MutexLock lock(mu_);
    value_ = 0;
  }

 private:
  scanshare::Mutex mu_;
  int value_ SCANSHARE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  c.Reset();
  return 0;
}
