// Fixture: the audit hook placed after an unconditional early return — the
// mutation above escapes unaudited and the audit itself is dead code.
#include "common/audit.h"
#include "common/status.h"

namespace scanshare::fixture {

struct Table {
  int entries = 0;
  [[nodiscard]] Status CheckInvariants() const { return Status::OK(); }
};

Status BadEarlyReturn(Table* t) {
  t->entries += 1;  // mutation
  return Status::OK();
  SCANSHARE_AUDIT_OK(t->CheckInvariants());  // flagged: dead after return
}

}  // namespace scanshare::fixture
