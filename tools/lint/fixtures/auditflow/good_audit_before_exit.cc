// Fixture: correctly placed audits — nothing here may be flagged by
// scanshare-auditflow.
#include "common/audit.h"
#include "common/status.h"

namespace scanshare::fixture {

struct Table {
  int entries = 0;
  [[nodiscard]] Status CheckInvariants() const { return Status::OK(); }
};

// Audit between the mutation and the return: the canonical shape.
Status GoodAuditThenReturn(Table* t) {
  t->entries += 1;
  SCANSHARE_AUDIT_OK(t->CheckInvariants());
  return Status::OK();
}

// A *conditional* early return above the audit is fine — the audit still
// runs on the fallthrough path.
Status GoodConditionalReturn(Table* t, bool skip) {
  if (skip) return Status::OK();
  t->entries += 1;
  SCANSHARE_AUDIT_OK(t->CheckInvariants());
  return Status::OK();
}

// Audit directly after a closing brace (end of a loop/if block).
Status GoodAfterBlock(Table* t, int n) {
  for (int i = 0; i < n; ++i) {
    t->entries += 1;
  }
  SCANSHARE_AUDIT_OK(t->CheckInvariants());
  return Status::OK();
}

}  // namespace scanshare::fixture
