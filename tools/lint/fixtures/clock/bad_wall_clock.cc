// Fixture: every line here violates scanshare-clock. The library must take
// time from sim::VirtualClock and randomness from scanshare::Rng only.
#include <chrono>
#include <ctime>
#include <random>  // flagged: <random> include

namespace scanshare {

uint64_t BadNow() {
  auto t = std::chrono::steady_clock::now();  // flagged: wall clock
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          t.time_since_epoch())
          .count());
}

uint64_t BadSeed() {
  std::random_device rd;  // flagged: non-deterministic entropy
  std::mt19937_64 gen(rd());  // flagged: std RNG engine
  return gen();
}

long BadEpoch() {
  return time(nullptr);  // flagged: libc wall clock
}

long BadEpochStd() {
  return std::time(nullptr);  // flagged: libc wall clock, std spelling
}

int BadRand() {
  return rand();  // flagged: C RNG
}

}  // namespace scanshare
