// Fixture: deterministic time and randomness — nothing here may be flagged
// by scanshare-clock.
#include "common/random.h"
#include "sim/env.h"

namespace scanshare {

// Accessors named clock()/time() are fine: only *calls into libc/chrono*
// are wall clocks.
class World {
 public:
  sim::VirtualClock& clock() { return clock_; }
  sim::Micros time() const { return clock_.Now(); }

 private:
  sim::VirtualClock clock_;
};

sim::Micros GoodNow(sim::Env* env) {
  return env->clock().Now();  // member access, not ::clock()
}

uint64_t GoodSeed() {
  Rng rng(42);  // deterministic xoshiro256**, constant seed
  return rng.Next();
}

// A genuine wall-clock read, justified and suppressed inline: the
// suppression mechanism itself must not be flagged.
long SuppressedEpoch() {
  return std::time(nullptr);  // NOLINT(scanshare-clock) fixture: suppression demo
}

// Mentions of steady_clock in comments or strings are not code:
// std::chrono::steady_clock::now() stays a comment.
const char* kDoc = "uses std::chrono::steady_clock internally? never.";

}  // namespace scanshare
