// Fixture: manual lock()/unlock() calls. Even on the annotated wrapper
// types, hand-rolled acquire/release means an early return or exception
// leaks the capability — RAII guards are the only accepted hold pattern.

#include "common/lock_order.h"
#include "common/mutex.h"

namespace scanshare {

class BadManualLock {
 public:
  void Mutate() {
    mu_.lock();
    ++value_;
    mu_.unlock();
  }

  bool TryMutate() {
    if (!mu_.try_lock()) return false;
    ++value_;
    mu_.unlock();
    return true;
  }

 private:
  Mutex mu_ SCANSHARE_ACQUIRED_AFTER(lock_order::kDriver);
  int value_ SCANSHARE_GUARDED_BY(mu_) = 0;
};

}  // namespace scanshare
