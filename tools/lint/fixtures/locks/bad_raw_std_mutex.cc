// Fixture: raw std::mutex / std::shared_mutex declarations. The
// thread-safety analysis cannot see a capability on libstdc++'s types, so
// a raw declaration silently opts the surrounding class out of analysis.

#include <mutex>
#include <shared_mutex>

namespace scanshare {

class BadRawMutex {
 private:
  std::mutex mu_;
  std::shared_mutex registry_mu_;
};

}  // namespace scanshare
