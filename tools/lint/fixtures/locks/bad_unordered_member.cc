// Fixture: a Mutex member with no SCANSHARE_ACQUIRED_BEFORE/AFTER
// ordering annotation. An unordered lock is invisible to the
// scripts/lock_order.py hierarchy check, so a deadlock-prone acquisition
// order could creep in without any tool noticing.

#include "common/mutex.h"

namespace scanshare {

class BadUnordered {
 public:
  void Mutate() SCANSHARE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++value_;
  }

 private:
  Mutex mu_;
  int value_ SCANSHARE_GUARDED_BY(mu_) = 0;
};

}  // namespace scanshare
