// Fixture: the capability-discipline pattern the `locks` rule accepts —
// annotated wrapper types, ordering annotations on every lock (same line
// or the clang-format continuation line), RAII guards only.

#include "common/lock_order.h"
#include "common/mutex.h"

namespace scanshare {

class GoodRegistry {
 public:
  void Mutate() SCANSHARE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++value_;
  }

  void MutateShared() SCANSHARE_EXCLUDES(registry_mu_) {
    WriterLock lock(registry_mu_);
    ++shared_value_;
  }

 private:
  Mutex mu_ SCANSHARE_ACQUIRED_AFTER(lock_order::kDriver);
  // Wrapped declaration: annotation on the continuation line is fine.
  mutable SharedMutex registry_mu_
      SCANSHARE_ACQUIRED_BEFORE(lock_order::kSsmTable);
  int value_ SCANSHARE_GUARDED_BY(mu_) = 0;
  int shared_value_ SCANSHARE_GUARDED_BY(registry_mu_) = 0;
};

}  // namespace scanshare
