// Fixture: direct console output in library code — every marked line
// violates scanshare-logging. The library is silent; common/logging.h only.
#include <cstdio>
#include <iostream>  // flagged: iostream include

namespace scanshare::fixture {

void BadPrints(int frames) {
  std::cout << "frames: " << frames << "\n";          // flagged
  std::cerr << "oops\n";                              // flagged
  printf("frames: %d\n", frames);                     // flagged
  std::fprintf(stderr, "frames: %d\n", frames);       // flagged
  puts("done");                                       // flagged
}

}  // namespace scanshare::fixture
