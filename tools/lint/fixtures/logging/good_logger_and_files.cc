// Fixture: diagnostics through the logger, data through explicit FILE*
// handles — nothing here may be flagged by scanshare-logging.
#include <cstdio>

#include "common/logging.h"
#include "common/status.h"

namespace scanshare::fixture {

Status GoodWriteCsv(const std::string& path, double value) {
  Logger::Log(LogLevel::kDebug, "writing csv");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::Internal("open failed");
  // Writing to an explicit file handle is data output, not console noise.
  std::fprintf(f, "value\n%.3f\n", value);
  std::fclose(f);
  return Status::OK();
}

void GoodSuppressed(int frames) {
  std::fprintf(stderr, "%d\n", frames);  // NOLINT(scanshare-logging) fixture: suppression demo
}

}  // namespace scanshare::fixture
