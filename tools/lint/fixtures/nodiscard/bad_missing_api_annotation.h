// Fixture: a BufferPool-shaped API header where one Status-returning
// declaration lost its [[nodiscard]] — exactly the regression the
// acceptance criteria demand the lint job catch.
#pragma once

#include "common/status.h"

namespace scanshare::fixture {

class MiniPool {
 public:
  [[nodiscard]] StatusOr<int> FetchPage(unsigned page);
  Status UnpinPage(unsigned page);  // flagged: annotation deleted
  [[nodiscard]] Status FlushAll();
  [[nodiscard]] Status CheckInvariants() const;
};

}  // namespace scanshare::fixture
