// Fixture: the Status class itself without the class-level [[nodiscard]].
// Dropping it silently disarms result-checking for every unannotated
// Status-returning function in the tree.
#pragma once

#include <string>

namespace scanshare::fixture {

class Status {  // flagged: must be `class [[nodiscard]] Status`
 public:
  bool ok() const { return code_ == 0; }

 private:
  int code_ = 0;
  std::string msg_;
};

}  // namespace scanshare::fixture
