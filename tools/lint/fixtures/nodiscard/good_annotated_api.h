// Fixture: a fully disciplined API header — class-level [[nodiscard]] on
// Status/PageGuard and per-declaration annotations on every fallible API.
// Nothing here may be flagged by scanshare-nodiscard.
#pragma once

#include <string>

namespace scanshare::fixture {

class [[nodiscard]] Status {
 public:
  bool ok() const { return code_ == 0; }
  // Forward declarations elsewhere stay legal:
  // class Status;
 private:
  int code_ = 0;
  std::string msg_;
};

class [[nodiscard]] PageGuard {
 public:
  void Release();
};

class MiniPool {
 public:
  [[nodiscard]] Status UnpinPage(unsigned page);
  [[nodiscard]] virtual Status FlushAll();
  [[nodiscard]] Status CheckInvariants() const;

  // Constructors and value uses of the type are not declarations the rule
  // cares about:
  Status MakeOk();  // NOLINT(scanshare-nodiscard) fixture: suppression demo
  void Consume() {
    Status st = MakeOk();
    (void)st;
  }
};

}  // namespace scanshare::fixture
