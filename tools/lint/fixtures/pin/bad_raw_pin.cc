// Fixture: raw pin-count manipulation outside src/buffer/ — every marked
// line violates scanshare-pin. Scan code must hold pins via PageGuard.
#include "buffer/buffer_pool.h"

namespace scanshare::fixture {

void BadDirectPin(buffer::BufferPool* pool, buffer::ReplacementPolicy* rp) {
  rp->Pin(3);    // flagged: raw Pin
  rp->Unpin(3);  // flagged: raw Unpin
  (void)pool->UnpinPage(7, buffer::PagePriority::kNormal);  // flagged
}

void BadDotCall(buffer::LruReplacer& rp) {
  rp.Pin(1);    // flagged
  rp.Unpin(1);  // flagged
}

}  // namespace scanshare::fixture
