// Fixture: pin lifetimes managed through PageGuard — nothing here may be
// flagged by scanshare-pin.
#include "buffer/page_guard.h"

namespace scanshare::fixture {

double GoodGuardedRead(buffer::BufferPool* pool, sim::PageId page,
                       sim::Micros now) {
  auto fetch = pool->FetchPage(page, now);
  if (!fetch.ok()) return 0.0;
  buffer::PageGuard guard(pool, page, fetch->data);
  guard.set_release_priority(buffer::PagePriority::kLow);
  // Words containing Pin/Unpin are not calls:
  // Pinning strategy documented in DESIGN.md; SpinLock() is unrelated.
  guard.Release();
  return 1.0;
}

}  // namespace scanshare::fixture
