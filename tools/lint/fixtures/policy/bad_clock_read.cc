// Fixture: a policy that reads the virtual clock to time-stamp its
// decision — banned; decisions must depend only on the handed-in state.

#include "sim/virtual_clock.h"

namespace fixture {

class ClockyPolicy {
 public:
  explicit ClockyPolicy(scanshare::sim::VirtualClock* clock)
      : clock_(clock) {}

  uint64_t Decide() { return static_cast<uint64_t>(clock_->Now()); }

 private:
  scanshare::sim::VirtualClock* clock_;
};

}  // namespace fixture
