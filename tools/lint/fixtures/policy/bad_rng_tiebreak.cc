// Fixture: a policy that breaks placement ties with the engine RNG —
// banned; randomized decisions make policy A/B runs non-replayable.

#include "common/random.h"

namespace fixture {

uint64_t DecideWithTiebreak(uint64_t a, uint64_t b) {
  scanshare::Rng rng(42);
  return rng.NextU64() % 2 == 0 ? a : b;
}

}  // namespace fixture
