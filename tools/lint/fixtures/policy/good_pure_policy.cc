// Fixture: a pure policy decision function — computes placement from the
// candidate set it was handed, no clock, no RNG, no environment access.

#include <cstdint>
#include <vector>

namespace fixture {

struct Candidate {
  uint64_t position = 0;
  uint64_t remaining = 0;
};

uint64_t ChoosePlacement(const std::vector<Candidate>& active,
                         uint64_t fallback) {
  uint64_t best = fallback;
  uint64_t best_remaining = 0;
  for (const Candidate& c : active) {
    if (c.remaining > best_remaining) {
      best_remaining = c.remaining;
      best = c.position;
    }
  }
  return best;
}

}  // namespace fixture
