// Fixture: raw POSIX descriptor I/O outside the file backend — every call
// below must raise a `rawio` finding. These reads bypass the io::IoBackend
// seam, so the simulator never charges them and the fault injector never
// sees them.

#include <unistd.h>

#include <cstdint>

namespace scanshare {

inline long SneakyPageRead(int fd, uint8_t* dest, uint64_t offset) {
  return pread(fd, dest, 4096, static_cast<long>(offset));  // BAD: bare pread
}

inline long SneakyQualifiedRead(int fd, uint8_t* dest) {
  return ::read(fd, dest, 4096);  // BAD: global-qualified read
}

inline long SneakyQualifiedPwrite(int fd, const uint8_t* src) {
  return ::pwrite(fd, src, 4096, 0);  // BAD: qualified pwrite
}

}  // namespace scanshare
