// Fixture: byte movement the `rawio` rule accepts — pages flow through
// the io::IoBackend seam (Charge/StartBytes/Join) or the DiskManager's
// charged-read path; no raw POSIX descriptor I/O. Member `.read()` on a
// stream-style object and identifiers merely containing "read" must not
// trip the rule either.

#include <cstdint>

namespace scanshare {

struct FakeBackend {
  int Charge(uint64_t first, uint64_t count, uint64_t now);
  int StartBytes(uint64_t first, uint64_t count, uint8_t* dest,
                 uint64_t* token);
  int Join(uint64_t token);
};

struct FakeStream {
  void read(char* dest, long n);  // istream-style member, not POSIX read.
};

inline int FetchExtent(FakeBackend* backend, uint64_t first, uint64_t count,
                       uint8_t* dest, uint64_t now) {
  if (backend->Charge(first, count, now) != 0) return 1;
  uint64_t token = 0;
  if (backend->StartBytes(first, count, dest, &token) != 0) return 1;
  return backend->Join(token);
}

inline void CopyHeader(FakeStream* stream, char* dest) {
  stream->read(dest, 16);  // member call — allowed.
  const uint64_t charged_reads = 3;  // identifier containing "read" — fine.
  (void)charged_reads;
}

}  // namespace scanshare
