// Fixture: every marked line violates scanshare-threads. Concurrency
// primitives belong in common/thread_pool.{h,cc} only; the simulator is
// single-threaded per run by design.
#include <atomic>              // flagged: concurrency header
#include <condition_variable>  // flagged: concurrency header
#include <mutex>               // flagged: concurrency header
#include <shared_mutex>        // flagged: concurrency header
#include <thread>              // flagged: concurrency header

namespace scanshare {

class BadSharedState {
 public:
  void Bump() {
    std::lock_guard<std::mutex> lock(mu_);  // flagged: lock machinery
    ++count_;
  }

 private:
  std::mutex mu_;               // flagged: std::mutex
  std::shared_mutex rw_;        // flagged: std::mutex (shared variant)
  std::atomic<int> count_{0};   // flagged: std::atomic
  std::condition_variable cv_;  // flagged: std::condition_variable
};

void BadSpawn() {
  std::thread t([] {});  // flagged: std::thread
  t.join();
}

int BadAsync() {
  auto f = std::async([] { return 1; });  // flagged: future machinery
  return f.get();                         // (declaration line flagged)
}

}  // namespace scanshare
