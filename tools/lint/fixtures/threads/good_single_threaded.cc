// Fixture: single-threaded simulator code — nothing here may be flagged
// by scanshare-threads.
#include <cstdint>
#include <vector>

namespace scanshare {

// Plain sequential state machine: the shape of everything in src/.
class Scheduler {
 public:
  void Push(uint64_t ready_at) { ready_.push_back(ready_at); }
  uint64_t PopMin() {
    uint64_t best = ready_.back();
    ready_.pop_back();
    return best;
  }

 private:
  std::vector<uint64_t> ready_;
};

// Identifiers merely *containing* the banned words are fine: only the std
// types and the concurrency headers are concurrency.
struct ThreadPoolStats {
  uint64_t mutex_like_counter = 0;  // just a name, not std::mutex
  uint64_t atomic_writes = 0;       // just a name, not std::atomic
};

// Mentions in comments or strings are not code: std::thread, <mutex>,
// std::shared_mutex, std::atomic<int> stay comments. Real concurrent
// subsystems (partitioned pool, concurrent SSM, parallel scan driver)
// are exempted by membership in THREADS_ALLOWED, not by NOLINT.
const char* kDoc = "the engine never spawns a std::thread";

// A justified, suppressed use: the suppression mechanism itself must not
// be flagged.
// (Hypothetically a debug-only counter; real code would route through the
// thread pool instead.)
#if 0
std::atomic<int> g_debug;  // NOLINT(scanshare-threads) fixture: suppression demo
#endif

}  // namespace scanshare
