// Fixture: a direct Emit call bypasses the null check and the
// SCANSHARE_TRACE_OFF compile-out.
#include "obs/trace.h"

namespace scanshare {

void Hook(obs::Tracer* tracer, sim::Micros now) {
  tracer->Emit(obs::EventKind::kPoolHit, now, 0, 42);
}

void HookByRef(obs::Tracer& tracer, sim::Micros now) {
  tracer.Emit(obs::EventKind::kPoolMiss, now, 0, 42);
}

}  // namespace scanshare
