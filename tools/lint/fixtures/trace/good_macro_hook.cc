// Fixture: emitting through the hook macro is the sanctioned pattern.
#include "obs/trace.h"

namespace scanshare {

void Hook(obs::Tracer* tracer, sim::Micros now) {
  SCANSHARE_TRACE_EVENT(tracer, obs::EventKind::kPoolHit, now, /*actor=*/0,
                        /*arg0=*/42);
}

}  // namespace scanshare
